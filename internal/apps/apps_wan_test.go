package apps

// WAN-style integration tests: every Section 4 application runs against
// simulated remote devices over high-latency links, with crash-stop
// failures injected — the deployment conditions of the paper's §5.4,
// exercised per application.

import (
	"bytes"
	"context"
	"math/big"
	"testing"
	"time"

	pando "pando"
	"pando/internal/chain"
	"pando/internal/netsim"
	"pando/internal/transport"
)

func wanDeployment[I, O any](t *testing.T, f func(I) (O, error), opts ...pando.Option) *pando.Pando[I, O] {
	t.Helper()
	opts = append(opts,
		pando.WithBatch(4), // the paper's WAN batch size
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 40 * time.Millisecond}),
	)
	p := deployment(t, f, opts...)
	// A heterogeneous WAN fleet: two steady nodes, one crashing node.
	p.AddSimulatedWorkers(2, "planetlab", netsim.WAN, time.Millisecond, -1)
	p.AddSimulatedWorkers(1, "flaky-node", netsim.WAN, time.Millisecond, 6)
	return p
}

func TestWANCollatz(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := wanDeployment(t, CollatzSteps)
	inputs := CollatzInputs(big.NewInt(1), 40)
	results, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 40 {
		t.Fatalf("got %d results", len(results))
	}
	best, _ := MaxCollatz(results)
	if best.N != "27" {
		t.Fatalf("max at N=%s, want 27", best.N)
	}
}

func TestWANRaytrace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := wanDeployment(t, RenderFrame)
	frames, err := p.ProcessSlice(context.Background(), GenerateAngles(8))
	if err != nil {
		t.Fatal(err)
	}
	var gifBuf bytes.Buffer
	if err := EncodeAnimation(&gifBuf, frames); err != nil {
		t.Fatal(err)
	}
	if gifBuf.Len() == 0 {
		t.Fatal("empty animation")
	}
}

func TestWANSLTest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := wanDeployment(t, RunRandomCheck)
	reports, err := p.ProcessSlice(context.Background(), SLTestSeeds(500, 16))
	if err != nil {
		t.Fatal(err)
	}
	if bad := MonitorFailures(reports); len(bad) != 0 {
		t.Fatalf("violations: %+v", bad)
	}
}

func TestWANMLAgent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := wanDeployment(t, TrainAgent)
	outcomes, err := p.ProcessSlice(context.Background(), AgentInputs())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := BestAgent(outcomes); !ok {
		t.Fatal("no winner")
	}
}

func TestWANMining(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := chain.NewChain(9)
	m := chain.NewMonitor(c, 2048, 3, nil)
	p := wanDeployment(t, MineAttempt, pando.WithUnordered())
	sum, err := RunMining(context.Background(), p, c, m)
	if err != nil {
		t.Fatal(err)
	}
	if sum.BlocksMined != 2 {
		t.Fatalf("mined %d blocks, want 2", sum.BlocksMined)
	}
}

func TestWANGroupedCollatz(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The grouped data plane under WAN conditions with crashes.
	p := deployment(t, CollatzSteps,
		pando.WithBatch(8), pando.WithGroup(4),
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 40 * time.Millisecond}))
	p.AddSimulatedWorkers(2, "grouped-node", netsim.WAN, time.Millisecond, -1)
	p.AddSimulatedWorkers(1, "grouped-flaky", netsim.WAN, time.Millisecond, 5)
	inputs := CollatzInputs(big.NewInt(100), 48)
	results, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 48 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.N != inputs[i] {
			t.Fatalf("results[%d] out of order: %s", i, r.N)
		}
	}
}
