package apps

import (
	"pando/internal/qlearn"
)

// This file implements the Machine learning agent application (paper
// §4.1): searching for the optimal learning rate that helps an autonomous
// agent in a simulated environment quickly learn sequences of steps that
// result in rewards. Each input is one hyperparameter configuration; each
// device runs one full simulation.

// TrainAgent is the processing function: one training run per
// hyperparameter configuration.
func TrainAgent(p qlearn.Params) (qlearn.Outcome, error) {
	return qlearn.Train(p)
}

// DefaultAgentBase returns the shared training settings of the sweep.
func DefaultAgentBase() qlearn.Params {
	return qlearn.Params{
		Gamma:    0.95,
		Epsilon:  0.1,
		Episodes: 150,
		MaxSteps: 150,
		Seed:     17,
		GridSize: 6,
	}
}

// DefaultAlphaSweep is the hyperparameter grid for the search.
func DefaultAlphaSweep() []float64 {
	return []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
}

// AgentInputs builds the stream of hyperparameter configurations.
func AgentInputs() []qlearn.Params {
	return qlearn.SweepAlphas(DefaultAlphaSweep(), DefaultAgentBase())
}

// BestAgent selects the winning configuration (the search's answer).
func BestAgent(outcomes []qlearn.Outcome) (qlearn.Outcome, bool) {
	return qlearn.Best(outcomes)
}
