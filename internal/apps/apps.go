// Package apps implements the seven applications of the paper's Section 4,
// organized along their dataflow patterns:
//
//   - Pipeline processing (§4.1, Figure 10): Collatz, Raytrace, Arxiv,
//     StreamLender test, ML agent, Image processing (http).
//   - Synchronous parallel search (§4.2, Figure 11): crypto-currency
//     mining.
//   - Stubborn processing with failure-prone external data distribution
//     (§4.3, Figure 12): image processing over DAT / WebTorrent-like
//     stores.
//
// Each application exposes its processing function (the code a volunteer
// runs), an input generator, and the post-processing step of its Unix
// pipeline. RegisterAll registers every processing function in the
// volunteer registry so a generic volunteer binary can serve any of them.
package apps

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	pando "pando"
	"pando/internal/chain"
	"pando/internal/qlearn"
	"pando/internal/worker"
)

// Canonical registry names for the applications' processing functions.
const (
	CollatzFunc = "collatz"
	RenderFunc  = "render"
	ArxivFunc   = "arxiv-tag"
	SLTestFunc  = "sl-test"
	MLAgentFunc = "ml-agent"
	ImgProcFunc = "img-proc-http"
	MineFunc    = "mine"
	ImgBlurP2P  = "img-proc-p2p"
)

var registerAllOnce sync.Once

// flexible adapts a typed processing function so the registry entry
// accepts both encodings a master may send: the direct JSON encoding of I
// (typed library masters) and a JSON *string* carrying a textual
// representation of I (the CLI, whose inputs arrive as lines on the
// standard input, as in the paper's Figure 3 pipeline). fromString parses
// the textual form.
func flexible[I, O any](f func(I) (O, error), fromString func(string) (I, error)) worker.Handler {
	direct := pando.Handler(f)
	return func(input []byte) ([]byte, error) {
		out, directErr := direct(input)
		if directErr == nil {
			return out, nil
		}
		var s string
		if err := json.Unmarshal(input, &s); err != nil {
			return nil, directErr
		}
		v, err := fromString(s)
		if err != nil {
			return nil, fmt.Errorf("apps: %w (direct decode also failed: %v)", err, directErr)
		}
		r, err := f(v)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	}
}

// jsonString parses the textual form of a JSON-encoded input value.
func jsonString[I any](s string) (I, error) {
	var v I
	err := json.Unmarshal([]byte(s), &v)
	return v, err
}

// RegisterAll registers every application's processing function in the
// volunteer registry. Safe to call multiple times.
func RegisterAll() {
	registerAllOnce.Do(func() {
		worker.Register(CollatzFunc, pando.Handler(CollatzSteps))
		worker.Register(RenderFunc, pando.Handler(RenderFrame))
		worker.Register(ArxivFunc, pando.Handler(TagPaper))
		worker.Register(SLTestFunc, flexible(RunRandomCheck, func(s string) (int64, error) {
			return strconv.ParseInt(s, 10, 64)
		}))
		worker.Register(MLAgentFunc, flexible(TrainAgent, jsonString[qlearn.Params]))
		worker.Register(ImgProcFunc, flexible(BlurTileHTTP, jsonString[TileJob]))
		worker.Register(MineFunc, flexible(MineAttempt, jsonString[chain.Attempt]))
	})
}
