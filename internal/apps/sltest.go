package apps

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"pando/internal/lender"
	"pando/internal/pullstream"
)

// This file implements the StreamLender test application (paper §4.1):
// random executions of StreamLender searching for violations of the
// pull-stream protocol invariants. The paper reports this strategy found
// three corner-case bugs that manually written tests missed, and that
// Pando was then used to scale the strategy to millions of executions —
// testing the tool with the tool.

// CheckReport is the outcome of one randomized execution.
type CheckReport struct {
	Seed       int64    `json:"seed"`
	Inputs     int      `json:"inputs"`
	Workers    int      `json:"workers"`
	Crashes    int      `json:"crashes"`
	Violations []string `json:"violations,omitempty"`
	// Executions counts protocol interactions exercised, the Tests/s
	// throughput unit of Table 2.
	Executions int `json:"executions"`
}

// OK reports whether the execution was invariant-clean.
func (r CheckReport) OK() bool { return len(r.Violations) == 0 }

// RunRandomCheck performs one random execution of StreamLender derived
// from the seed: a random number of inputs, workers, crash points and
// interleavings, with protocol checkers on both boundaries and an output
// correctness check.
func RunRandomCheck(seed int64) (CheckReport, error) {
	rng := rand.New(rand.NewSource(seed))
	rep := CheckReport{
		Seed:    seed,
		Inputs:  rng.Intn(40),
		Workers: 1 + rng.Intn(5),
	}

	l := lender.New[int, int]()
	inCheck := pullstream.NewChecker[int]()
	out := l.Bind(inCheck.Wrap(pullstream.Count(rep.Inputs)))
	outCheck := pullstream.NewChecker[int]()

	collected := make(chan []int, 1)
	collectErr := make(chan error, 1)
	go func() {
		vs, err := pullstream.Collect(outCheck.Wrap(out))
		collected <- vs
		collectErr <- err
	}()

	var wg sync.WaitGroup
	reliable := rng.Intn(rep.Workers)
	for w := 0; w < rep.Workers; w++ {
		crashAfter := -1
		if w != reliable && rng.Intn(2) == 0 {
			crashAfter = rng.Intn(6)
			rep.Crashes++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, d := l.LendStream()
			results := make(chan int)
			crashc := make(chan error, 1)
			var sinkWG sync.WaitGroup
			sinkWG.Add(1)
			go func() {
				defer sinkWG.Done()
				d.Sink(pullstream.FromChan(results, crashc))
			}()
			count := 0
			for {
				type ans struct {
					end error
					v   int
				}
				ch := make(chan ans, 1)
				d.Source(nil, func(end error, v int) { ch <- ans{end, v} })
				a := <-ch
				if a.end != nil {
					close(results)
					sinkWG.Wait()
					return
				}
				if crashAfter >= 0 && count >= crashAfter {
					d.Source(errors.New("crash"), func(error, int) {})
					crashc <- errors.New("crash")
					sinkWG.Wait()
					return
				}
				results <- a.v * 2
				count++
			}
		}()
	}

	got := <-collected
	if err := <-collectErr; err != nil {
		rep.Violations = append(rep.Violations, "output failed: "+err.Error())
	}
	wg.Wait()

	if len(got) != rep.Inputs {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("output count %d != inputs %d", len(got), rep.Inputs))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("output[%d] = %d out of order", i, v))
			break
		}
	}
	for _, v := range inCheck.Violations() {
		rep.Violations = append(rep.Violations, "input boundary: "+v.String())
	}
	for _, v := range outCheck.Violations() {
		rep.Violations = append(rep.Violations, "output boundary: "+v.String())
	}
	rep.Executions = inCheck.Requests() + outCheck.Requests()
	return rep, nil
}

// SLTestSeeds generates the input stream: n consecutive seeds from start.
func SLTestSeeds(start int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+int64(i))
	}
	return out
}

// MonitorFailures is the Post stage (Figure 10): collect the reports with
// violations.
func MonitorFailures(reports []CheckReport) []CheckReport {
	var bad []CheckReport
	for _, r := range reports {
		if !r.OK() {
			bad = append(bad, r)
		}
	}
	return bad
}
