package bench

import "testing"

func TestSchedComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmp, err := RunSchedComparison(120, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(cmp.Rows))
	}
	for _, r := range cmp.Rows {
		if r.Throughput <= 0 {
			t.Errorf("row %s measured no throughput", r.Name)
		}
	}
	// The structural effects, asserted loosely to tolerate CI noise: the
	// adaptive window must out-run the static batch=2 default on a
	// latency-bound fleet, and speculation must bound the tail when a
	// worker stalls (the no-speculation run waits on the 1.5s/item
	// crawler; the speculative run does not).
	if cmp.AdaptiveSpeedupHeterogeneous < 1.2 {
		t.Errorf("adaptive heterogeneous speedup %.2fx; expected > 1.2x over static batch=2",
			cmp.AdaptiveSpeedupHeterogeneous)
	}
	if cmp.SpeculationTailSpeedup < 1.5 {
		t.Errorf("speculation tail speedup %.2fx; expected the stalled worker's items to be rescued",
			cmp.SpeculationTailSpeedup)
	}
	last := cmp.Rows[len(cmp.Rows)-1]
	if last.Speculated == 0 {
		t.Error("speculation row recorded no re-dispatched values")
	}
}
