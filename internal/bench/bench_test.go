package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestProfilesEncodePaperTotals(t *testing.T) {
	// The encoded profiles must reproduce the bold totals of Table 2.
	cases := []struct {
		s    Scenario
		app  App
		want float64
	}{
		{LAN, Collatz, 2209.65},
		{LAN, Crypto, 378672},
		{LAN, SLTest, 3603.70},
		{LAN, Raytrace, 18.94},
		{LAN, ImgProc, 0.71},
		{LAN, MLAgent, 484.90},
		{VPN, Collatz, 3823.51},
		{VPN, Crypto, 1534102},
		{VPN, Raytrace, 16.38},
		{WAN, Collatz, 1845.52},
		{WAN, Crypto, 717485},
		{WAN, Raytrace, 4.75},
		{WAN, MLAgent, 714.38},
	}
	for _, c := range cases {
		got := c.s.Total(c.app)
		// The paper's printed totals are rounded from two-decimal cells
		// (e.g. the LAN ImgProc column sums to 0.72 but prints 0.71), so
		// allow a small absolute slack alongside the relative one.
		tol := math.Max(0.001*c.want, 0.015)
		if math.Abs(got-c.want) > tol {
			t.Errorf("%s/%s total = %.2f, want %.2f", c.s.Name, c.app, got, c.want)
		}
	}
}

func TestProfilesShares(t *testing.T) {
	// Spot-check the % columns against the paper.
	if s := LAN.Share("MBPro 2016", Collatz); math.Abs(s-47.3) > 0.1 {
		t.Fatalf("MBPro share = %.1f, want 47.3", s)
	}
	if s := VPN.Share("dahu.grenoble", Raytrace); math.Abs(s-19.0) > 0.1 {
		t.Fatalf("dahu share = %.1f, want 19.0", s)
	}
	if s := WAN.Share("cse-yellow.cse.chalmers.se", Collatz); math.Abs(s-25.5) > 0.1 {
		t.Fatalf("chalmers share = %.1f, want 25.5", s)
	}
}

func TestWANHasNoImgProc(t *testing.T) {
	if WAN.Total(ImgProc) != 0 {
		t.Fatal("the paper could not run ImgProc on the WAN; the profile must not either")
	}
}

func TestRunCellSharesTrackPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Run one representative cell and require every device's measured %
	// share to be within 10 percentage points of the paper's — the shape
	// of Table 2.
	cell, err := RunCell(LAN, Collatz, Options{Items: 600, TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Rows) != 5 {
		t.Fatalf("got %d rows, want 5 devices", len(cell.Rows))
	}
	for _, r := range cell.Rows {
		if r.Items == 0 {
			t.Errorf("%s processed nothing", r.Device)
		}
		if math.Abs(r.MeasuredShare-r.PaperShare) > 10 {
			t.Errorf("%s share %.1f%% vs paper %.1f%% (> 10pp off)",
				r.Device, r.MeasuredShare, r.PaperShare)
		}
	}
	// The fastest device must remain the fastest.
	var fastest Row
	for _, r := range cell.Rows {
		if r.Measured > fastest.Measured {
			fastest = r
		}
	}
	if fastest.Device != "MBPro 2016" {
		t.Errorf("fastest device = %s, want MBPro 2016", fastest.Device)
	}
}

func TestRunCellWANOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cell, err := RunCell(WAN, Raytrace, Options{Items: 250, TimeScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Who wins must match the paper: chalmers and huji are the two
	// fastest WAN nodes on Raytrace.
	byDevice := map[string]float64{}
	for _, r := range cell.Rows {
		byDevice[r.Device] = r.MeasuredShare
	}
	if byDevice["cse-yellow.cse.chalmers.se"] < byDevice["ple42.planet-lab.eu"] {
		t.Errorf("chalmers (%f%%) should out-process ple42 (%f%%)",
			byDevice["cse-yellow.cse.chalmers.se"], byDevice["ple42.planet-lab.eu"])
	}
}

func TestRunCellErrorsOnMissingApp(t *testing.T) {
	empty := Scenario{Name: "none", Devices: []Device{{Name: "d", Cores: 1, Rates: map[App]float64{}}}}
	if _, err := RunCell(empty, Collatz, Options{Items: 1}); err == nil {
		t.Fatal("expected error for scenario without the app")
	}
}

func TestBatchSweepHidesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Claim C1: with latency comparable to compute time, batch >= 2
	// noticeably outperforms batch 1.
	points, err := RunBatchSweep([]int{1, 2, 4, 8}, 20*time.Millisecond, 10*time.Millisecond, 3, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	if points[1].Throughput < points[0].Throughput*1.5 {
		t.Errorf("batch 2 (%.1f/s) should beat batch 1 (%.1f/s) by >= 1.5x when RTT ~ 4x compute",
			points[1].Throughput, points[0].Throughput)
	}
	if points[3].Throughput < points[1].Throughput {
		// Larger batches should not hurt (monotone up to saturation).
		ratio := points[3].Throughput / points[1].Throughput
		if ratio < 0.8 {
			t.Errorf("batch 8 (%.1f/s) much worse than batch 2 (%.1f/s)",
				points[3].Throughput, points[1].Throughput)
		}
	}
}

func TestCheckClaimsAllHold(t *testing.T) {
	for _, c := range CheckClaims() {
		if !c.Holds {
			t.Errorf("claim %s does not hold: %s (%s)", c.ID, c.Text, c.Detail)
		}
	}
}

func TestRunSpeedupOverSingleDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Headline claim: the full LAN set beats the lone MacBook Air.
	r, err := RunSpeedup(Raytrace, "MBAir 2011", Options{Items: 300, TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: total 18.94 f/s vs MBA's 2.94 f/s = 6.4x. Require at least
	// half that, allowing coordination overhead at compressed time.
	if r.Speedup < 3 {
		t.Errorf("speedup = %.2fx, want >= 3x (paper: 6.4x)", r.Speedup)
	}
}

func TestRenderTable2Smoke(t *testing.T) {
	cells := []CellResult{{
		Scenario: "LAN: Personal Devices",
		App:      Collatz,
		Rows: []Row{
			{Device: "iPhone SE", Measured: 330, MeasuredShare: 15, Paper: 336.18, PaperShare: 15.2, Items: 60},
		},
		TotalMeasured: 330,
		TotalPaper:    2209.65,
	}}
	var buf bytes.Buffer
	RenderTable2(&buf, cells)
	out := buf.String()
	for _, want := range []string{"LAN: Personal Devices", "iPhone SE", "Collatz", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderClaimsAndSweepSmoke(t *testing.T) {
	var buf bytes.Buffer
	RenderClaims(&buf, []Claim{{ID: "X", Text: "t", Holds: true, Detail: "d"}})
	if !strings.Contains(buf.String(), "HOLDS") {
		t.Fatal("claims render missing status")
	}
	buf.Reset()
	RenderSweep(&buf, []SweepPoint{{Batch: 1, Latency: time.Millisecond, Throughput: 10}})
	if !strings.Contains(buf.String(), "batch") {
		t.Fatal("sweep render missing header")
	}
	buf.Reset()
	RenderSpeedup(&buf, SpeedupResult{App: Raytrace, SingleDevice: "x", Speedup: 2})
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("speedup render missing")
	}
}

func TestPerCoreDelay(t *testing.T) {
	d := Device{Name: "d", Cores: 2, Rates: map[App]float64{Raytrace: 4}}
	// 4 frames/s over 2 cores = 2 f/s per core; 1 unit/item => 0.5 s/item
	// at scale 1.
	delay, ok := perCoreDelay(d, Raytrace, 1)
	if !ok {
		t.Fatal("rate missing")
	}
	if delay != 500*time.Millisecond {
		t.Fatalf("delay = %v, want 500ms", delay)
	}
	if _, ok := perCoreDelay(d, Collatz, 1); ok {
		t.Fatal("missing app should report !ok")
	}
}
