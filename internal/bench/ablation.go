package bench

import (
	"context"
	"fmt"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/transport"
)

// This file holds ablations of the design choices DESIGN.md calls out:
// how fast the heartbeat mechanism detects crashes (the fault-tolerance
// design of §2.4.1), what ordered output costs relative to the unordered
// variant (§4.2), and why the Limiter's bound matters for adaptivity and
// not just memory (§2.4.3).

// DetectionPoint is one measurement of crash-detection latency.
type DetectionPoint struct {
	HeartbeatInterval time.Duration
	Timeout           time.Duration
	Detection         time.Duration
}

// RunFailureDetection measures, for each heartbeat interval, how long a
// *silent* crash takes to be detected: the peer keeps the connection open
// but stops answering (a frozen browser tab, a half-open TCP connection),
// so only the heartbeat timeout can expose it. The paper's
// partial-synchrony assumption (§2.3) makes this the recovery-latency
// floor: values held by a crashed device cannot be re-lent before the
// crash is suspected. An abrupt connection reset is detected immediately
// by comparison.
func RunFailureDetection(intervals []time.Duration) ([]DetectionPoint, error) {
	var out []DetectionPoint
	for _, iv := range intervals {
		cfg := transport.Config{HeartbeatInterval: iv}
		p := netsim.NewPipe(netsim.LAN)
		a := transport.NewWSock(p.A, cfg)

		// The peer answers pings by hand until told to go silent; it
		// keeps draining afterwards so backpressure does not interfere.
		silent := make(chan struct{})
		go func() {
			for {
				m, err := proto.ReadFrame(p.B)
				if err != nil {
					return
				}
				isPing := m.Type == proto.TypePing
				proto.Release(m)
				select {
				case <-silent:
					continue // frozen: reads but never answers
				default:
				}
				if isPing {
					if err := proto.WriteFrame(p.B, &proto.Message{Type: proto.TypePong}); err != nil {
						return
					}
				}
			}
		}()

		// Let heartbeats establish, then freeze the peer.
		time.Sleep(3 * iv)
		start := time.Now()
		close(silent)
		m, err := a.Recv()
		detection := time.Since(start)
		if err == nil {
			proto.Release(m)
			p.Cut()
			return nil, fmt.Errorf("bench: silent crash not detected at interval %v", iv)
		}
		a.Close()
		p.Cut()
		out = append(out, DetectionPoint{
			HeartbeatInterval: iv,
			Timeout:           cfg.HeartbeatTimeout,
			Detection:         detection,
		})
	}
	return out, nil
}

// OrderingPoint compares ordered and unordered output on one workload.
type OrderingPoint struct {
	Workers         int
	JitterPerItem   time.Duration
	OrderedItems    float64 // items/s
	UnorderedItems  float64 // items/s
	OrderedFirstOut time.Duration
}

var ablSeq int

func runOrdering(unordered bool, workers, items int, baseDelay, spread time.Duration) (float64, time.Duration, error) {
	ablSeq++
	opts := []pando.Option{
		pando.WithBatch(2),
		pando.WithoutRegistry(),
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 50 * time.Millisecond}),
	}
	if unordered {
		opts = append(opts, pando.WithUnordered())
	}
	p := pando.New(fmt.Sprintf("abl-order-%d", ablSeq),
		func(w WorkItem) (Ack, error) { return Ack{Seq: w.Seq}, nil }, opts...)
	defer p.Close()
	for w := 0; w < workers; w++ {
		delay := baseDelay + time.Duration(w)*spread
		p.AddWorker(fmt.Sprintf("w%d", w), netsim.LAN, delay, -1)
	}
	in := make(chan WorkItem)
	go func() {
		defer close(in)
		for i := 0; i < items; i++ {
			in <- WorkItem{Seq: i}
		}
	}()
	start := time.Now()
	outc, errc := p.Process(context.Background(), in)
	var firstOut time.Duration
	n := 0
	for range outc {
		if n == 0 {
			firstOut = time.Since(start)
		}
		n++
	}
	if err := <-errc; err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), firstOut, nil
}

// RunOrderingAblation compares the default ordered mode to the unordered
// variant on a heterogeneous worker set. The declarative-concurrency
// design predicts nearly identical throughput (ordering only buffers at
// the merge point); what ordering costs is time-to-first-output when a
// slow device holds the head of the stream.
func RunOrderingAblation(workers, items int, spread time.Duration) (OrderingPoint, error) {
	ordered, firstOut, err := runOrdering(false, workers, items, time.Millisecond, spread)
	if err != nil {
		return OrderingPoint{}, err
	}
	unordered, _, err := runOrdering(true, workers, items, time.Millisecond, spread)
	if err != nil {
		return OrderingPoint{}, err
	}
	return OrderingPoint{
		Workers:         workers,
		JitterPerItem:   spread,
		OrderedItems:    ordered,
		UnorderedItems:  unordered,
		OrderedFirstOut: firstOut,
	}, nil
}

// AdaptivityPoint measures load balance under one batch size.
type AdaptivityPoint struct {
	Batch       int
	Elapsed     time.Duration
	FastItems   int
	SlowItems   int
	IdealShare  float64 // fast device's fair share given the speed ratio
	ActualShare float64
}

// RunBatchAdaptivity shows the other side of the Limiter trade-off: the
// batch must be large enough to hide latency (claim C1) but a very large
// bound lets a slow device hoard prefetched inputs, hurting adaptivity
// and completion time on heterogeneous devices. Two workers with a 10x
// speed difference process a fixed workload under several bounds.
func RunBatchAdaptivity(batches []int, items int) ([]AdaptivityPoint, error) {
	var out []AdaptivityPoint
	fast, slow := time.Millisecond, 10*time.Millisecond
	for _, b := range batches {
		ablSeq++
		p := pando.New(fmt.Sprintf("abl-adapt-%d", ablSeq),
			func(w WorkItem) (Ack, error) { return Ack{Seq: w.Seq}, nil },
			pando.WithBatch(b),
			pando.WithoutRegistry(),
			pando.WithChannelConfig(transport.Config{HeartbeatInterval: 50 * time.Millisecond}),
		)
		p.AddWorker("fast", netsim.LAN, fast, -1)
		p.AddWorker("slow", netsim.LAN, slow, -1)
		inputs := make([]WorkItem, items)
		for i := range inputs {
			inputs[i] = WorkItem{Seq: i}
		}
		start := time.Now()
		if _, err := p.ProcessSlice(context.Background(), inputs); err != nil {
			p.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		var fastN, slowN int
		for _, w := range p.Stats() {
			switch w.Name {
			case "fast":
				fastN = w.Items
			case "slow":
				slowN = w.Items
			}
		}
		p.Close()
		ratio := float64(slow) / float64(fast)
		point := AdaptivityPoint{
			Batch:      b,
			Elapsed:    elapsed,
			FastItems:  fastN,
			SlowItems:  slowN,
			IdealShare: ratio / (ratio + 1),
		}
		if fastN+slowN > 0 {
			point.ActualShare = float64(fastN) / float64(fastN+slowN)
		}
		out = append(out, point)
	}
	return out, nil
}

// GroupingPoint compares the plain and grouped data planes.
type GroupingPoint struct {
	Group      int
	Latency    time.Duration
	Throughput float64 // items/s
}

// RunGroupingComparison measures throughput for several group sizes over
// a high-latency link with very small items — the regime where
// per-message overhead dominates and sending several inputs per frame
// (the "batching inputs for distribution" of §1) pays off.
func RunGroupingComparison(groups []int, latency time.Duration, nWorkers, items int) ([]GroupingPoint, error) {
	var out []GroupingPoint
	for _, g := range groups {
		ablSeq++
		opts := []pando.Option{
			pando.WithBatch(4 * maxInt(1, g)),
			pando.WithoutRegistry(),
			pando.WithChannelConfig(transport.Config{HeartbeatInterval: 100 * time.Millisecond}),
		}
		if g > 1 {
			opts = append(opts, pando.WithGroup(g))
		}
		p := pando.New(fmt.Sprintf("abl-group-%d", ablSeq),
			func(w WorkItem) (Ack, error) { return Ack{Seq: w.Seq}, nil }, opts...)
		link := netsim.Link{Latency: latency, Jitter: latency / 20, Bandwidth: 4 << 20}
		for w := 0; w < nWorkers; w++ {
			p.AddWorker(fmt.Sprintf("w%d", w), link, 100*time.Microsecond, -1)
		}
		inputs := make([]WorkItem, items)
		for i := range inputs {
			inputs[i] = WorkItem{Seq: i}
		}
		start := time.Now()
		if _, err := p.ProcessSlice(context.Background(), inputs); err != nil {
			p.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		p.Close()
		out = append(out, GroupingPoint{Group: g, Latency: latency, Throughput: float64(items) / elapsed.Seconds()})
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
