package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/transport"
)

// This file measures what fleet sharing costs and buys. Two deployments
// of the collatz profile run concurrently in two configurations:
//
//   - dedicated: two masters, each owning half the devices — the
//     pre-pool world, one deployment per fleet.
//   - shared: one pando.Pool owning all devices, two Map jobs leasing
//     from it with demand-weighted fair share.
//
// With both jobs equally long ("concurrent"), sharing must be close to
// free: the acceptance budget is aggregate throughput within 15% of the
// dedicated split. With unequal jobs ("staggered", one stream a quarter
// the length of the other), sharing should win outright — the short
// job's devices re-lease to the long job instead of idling, which is the
// point of a fleet that outlives any single stream.

// PoolRow is one measured configuration.
type PoolRow struct {
	Name      string  `json:"name"`
	Fleet     string  `json:"fleet"`
	Items     int     `json:"items"` // total across both jobs
	ElapsedMS float64 `json:"elapsed_ms"`
	// Throughput is the aggregate items/s across both jobs.
	Throughput float64 `json:"items_per_sec"`
}

// PoolComparison aggregates the experiment for BENCH_pool.json.
type PoolComparison struct {
	Rows []PoolRow `json:"rows"`
	// SharedVsDedicatedPct is shared aggregate throughput as a percentage
	// of dedicated, on the equal-length workload (the ≤15%-loss budget:
	// this number must stay ≥ 85).
	SharedVsDedicatedPct float64 `json:"shared_vs_dedicated_pct"`
	// StaggeredGainPct is how much faster the shared fleet finishes the
	// staggered workload than the split fleet (re-leasing at work).
	StaggeredGainPct float64 `json:"staggered_gain_pct"`
}

var poolBenchSeq int

const poolWorkerDelay = time.Millisecond

func poolBenchLink() netsim.Link {
	return netsim.Link{Latency: 500 * time.Microsecond, Bandwidth: 64 << 20}
}

// runPoolDedicated runs the two jobs on two dedicated masters, each with
// half the devices, and returns the wall-clock for both to finish.
func runPoolDedicated(itemsA, itemsB, fleet int) (time.Duration, error) {
	poolBenchSeq++
	opts := []pando.Option{
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 50 * time.Millisecond}),
		pando.WithoutRegistry(),
		pando.WithBatch(4),
	}
	pA := pando.New(fmt.Sprintf("pool-bench-a-%d", poolBenchSeq), collatzSteps, opts...)
	defer pA.Close()
	pB := pando.New(fmt.Sprintf("pool-bench-b-%d", poolBenchSeq), collatzSteps, opts...)
	defer pB.Close()
	for i := 0; i < fleet/2; i++ {
		pA.AddWorker(fmt.Sprintf("a-dev-%d", i+1), poolBenchLink(), poolWorkerDelay, -1)
		pB.AddWorker(fmt.Sprintf("b-dev-%d", i+1), poolBenchLink(), poolWorkerDelay, -1)
	}
	return runPoolPair(pA, pB, itemsA, itemsB)
}

// runPoolShared runs the two jobs on one pool owning the whole fleet.
func runPoolShared(itemsA, itemsB, fleet int) (time.Duration, error) {
	poolBenchSeq++
	pool := pando.NewPool(
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 50 * time.Millisecond}),
		pando.WithRebalanceInterval(25*time.Millisecond),
	)
	defer pool.Close()
	pA := pando.Map(pool, fmt.Sprintf("pool-bench-a-%d", poolBenchSeq), collatzSteps,
		pando.WithoutRegistry(), pando.WithBatch(4))
	defer pA.Close()
	pB := pando.Map(pool, fmt.Sprintf("pool-bench-b-%d", poolBenchSeq), collatzSteps,
		pando.WithoutRegistry(), pando.WithBatch(4))
	defer pB.Close()
	for i := 0; i < fleet; i++ {
		pool.AddWorker(fmt.Sprintf("shared-dev-%d", i+1), poolBenchLink(), poolWorkerDelay, -1)
	}
	return runPoolPair(pA, pB, itemsA, itemsB)
}

// runPoolPair drives both deployments concurrently and times completion
// of the slower one.
func runPoolPair(pA, pB *pando.Pando[int, int], itemsA, itemsB int) (time.Duration, error) {
	mkIn := func(n int) []int {
		in := make([]int, n)
		for i := range in {
			in[i] = i + 1
		}
		return in
	}
	var wg sync.WaitGroup
	var errA, errB error
	var gotA, gotB int
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		out, err := pA.ProcessSlice(context.Background(), mkIn(itemsA))
		gotA, errA = len(out), err
	}()
	go func() {
		defer wg.Done()
		out, err := pB.ProcessSlice(context.Background(), mkIn(itemsB))
		gotB, errB = len(out), err
	}()
	wg.Wait()
	elapsed := time.Since(start)
	if errA != nil {
		return 0, fmt.Errorf("bench: pool job A: %w", errA)
	}
	if errB != nil {
		return 0, fmt.Errorf("bench: pool job B: %w", errB)
	}
	if gotA != itemsA || gotB != itemsB {
		return 0, fmt.Errorf("bench: pool run lost results: %d/%d and %d/%d", gotA, itemsA, gotB, itemsB)
	}
	return elapsed, nil
}

const poolRounds = 3

func bestPoolRun(run func() (time.Duration, error)) (time.Duration, error) {
	var best time.Duration
	for r := 0; r < poolRounds; r++ {
		d, err := run()
		if err != nil {
			return 0, err
		}
		if r == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// RunPoolComparison measures shared-fleet vs dedicated-masters on equal
// and staggered two-job workloads. items is the length of the longer
// stream; the fleet is four devices (two per dedicated master).
func RunPoolComparison(items int) (PoolComparison, error) {
	const fleet = 4
	var cmp PoolComparison
	row := func(name, fleetDesc string, total int, d time.Duration) PoolRow {
		return PoolRow{
			Name:       name,
			Fleet:      fleetDesc,
			Items:      total,
			ElapsedMS:  float64(d) / float64(time.Millisecond),
			Throughput: float64(total) / d.Seconds(),
		}
	}

	// Equal-length jobs: sharing must be near-free.
	dEq, err := bestPoolRun(func() (time.Duration, error) { return runPoolDedicated(items, items, fleet) })
	if err != nil {
		return cmp, err
	}
	sEq, err := bestPoolRun(func() (time.Duration, error) { return runPoolShared(items, items, fleet) })
	if err != nil {
		return cmp, err
	}
	cmp.Rows = append(cmp.Rows,
		row("dedicated-concurrent", "2 masters × 2 devices", 2*items, dEq),
		row("shared-concurrent", "1 pool × 4 devices", 2*items, sEq),
	)
	cmp.SharedVsDedicatedPct = dEq.Seconds() / sEq.Seconds() * 100

	// Staggered jobs: the short job's devices must move to the long one.
	short := items / 4
	dSt, err := bestPoolRun(func() (time.Duration, error) { return runPoolDedicated(short, items, fleet) })
	if err != nil {
		return cmp, err
	}
	sSt, err := bestPoolRun(func() (time.Duration, error) { return runPoolShared(short, items, fleet) })
	if err != nil {
		return cmp, err
	}
	cmp.Rows = append(cmp.Rows,
		row("dedicated-staggered", "2 masters × 2 devices", short+items, dSt),
		row("shared-staggered", "1 pool × 4 devices", short+items, sSt),
	)
	cmp.StaggeredGainPct = (dSt.Seconds()/sSt.Seconds() - 1) * 100
	return cmp, nil
}

// RenderPool prints the comparison in the reporter's table style.
func RenderPool(w io.Writer, cmp PoolComparison) {
	fmt.Fprintf(w, "\nShared fleet vs dedicated masters, two concurrent collatz jobs (see BENCH_pool.json)\n")
	fmt.Fprintf(w, "%-22s %-24s %8s %10s %10s\n", "row", "fleet", "items", "elapsed", "items/s")
	for _, r := range cmp.Rows {
		fmt.Fprintf(w, "%-22s %-24s %8d %9.0fms %10.1f\n",
			r.Name, r.Fleet, r.Items, r.ElapsedMS, r.Throughput)
	}
	fmt.Fprintf(w, "equal jobs: shared fleet at %.1f%% of dedicated throughput (budget ≥ 85%%)\n",
		cmp.SharedVsDedicatedPct)
	fmt.Fprintf(w, "staggered jobs: shared fleet %.1f%% faster (idle devices re-leased to the long job)\n",
		cmp.StaggeredGainPct)
}
