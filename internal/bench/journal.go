package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/transport"
)

// This file measures the durable checkpoint journal's end-to-end cost so
// the default fsync batching interval is chosen with data, not folklore.
// The workload is the collatz profile of the evaluation: small JSON
// inputs and results, a LAN-grade link, and per-item compute in the
// low-millisecond range once the calibrated rates are time-scaled — the
// regime where per-result bookkeeping overhead would show first, since
// payload transfer cannot hide it. Three configurations are compared:
// no journal, the batched-fsync default, and fsync-per-record (the safe
// but slow extreme that batching exists to avoid).

// JournalRow is one measured configuration.
type JournalRow struct {
	Name       string  `json:"name"`
	Durability string  `json:"durability"`
	Items      int     `json:"items"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Throughput float64 `json:"items_per_sec"`
	// OverheadPct is elapsed time relative to the no-journal baseline.
	OverheadPct float64 `json:"overhead_pct"`
}

// JournalComparison aggregates the experiment for BENCH_journal.json.
type JournalComparison struct {
	Rows []JournalRow `json:"rows"`
	// OverheadDefaultPct is the batched default's overhead — the number
	// the ≤15% budget is checked against.
	OverheadDefaultPct float64 `json:"overhead_default_pct"`
	// OverheadPerRecordPct is the fsync-every-record extreme.
	OverheadPerRecordPct float64 `json:"overhead_per_record_pct"`
}

// collatzSteps is the real collatz computation (examples/collatz), so
// results vary in content like the profiled app's.
func collatzSteps(seed int) (int, error) {
	n, steps := seed, 0
	for n > 1 {
		if n%2 == 0 {
			n /= 2
		} else {
			n = 3*n + 1
		}
		steps++
	}
	return steps, nil
}

var journalSeq int

// runJournalRow deploys the collatz profile once. fsync selects the
// journal mode: 0 disables journaling, positive batches fsyncs on that
// interval, negative syncs every record.
func runJournalRow(name string, items int, fsync time.Duration, journaled bool) (JournalRow, error) {
	journalSeq++
	opts := []pando.Option{
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 50 * time.Millisecond}),
		pando.WithoutRegistry(),
		pando.WithBatch(4),
	}
	durability := "none"
	var dir string
	if journaled {
		var err error
		dir, err = os.MkdirTemp("", "pando-journal-bench-*")
		if err != nil {
			return JournalRow{}, err
		}
		defer os.RemoveAll(dir)
		opts = append(opts,
			pando.WithCheckpoint(filepath.Join(dir, "bench.journal")),
			pando.WithFsyncInterval(fsync))
		if fsync < 0 {
			durability = "fsync per record"
		} else {
			durability = "batched fsync (default 100ms)"
		}
	}
	p := pando.New(fmt.Sprintf("journal-bench-%d", journalSeq), collatzSteps, opts...)
	defer p.Close()
	// The collatz LAN profile, time-scaled: four cores around 1ms/item.
	link := netsim.Link{Latency: 500 * time.Microsecond, Bandwidth: 64 << 20}
	for i := 0; i < 4; i++ {
		p.AddWorker(fmt.Sprintf("core-%d", i+1), link, time.Millisecond, -1)
	}

	inputs := make([]int, items)
	for i := range inputs {
		inputs[i] = i + 1
	}
	start := time.Now()
	got, err := p.ProcessSlice(context.Background(), inputs)
	elapsed := time.Since(start)
	if err != nil {
		return JournalRow{}, fmt.Errorf("bench: journal %s: %w", name, err)
	}
	if len(got) != items {
		return JournalRow{}, fmt.Errorf("bench: journal %s: %d results, want %d", name, len(got), items)
	}
	return JournalRow{
		Name:       name,
		Durability: durability,
		Items:      items,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		Throughput: float64(items) / elapsed.Seconds(),
	}, nil
}

// journalRounds is how many times each configuration is deployed; the
// fastest round is kept. One ~100ms deployment is a single noisy sample
// (GC pauses, scheduler jitter — worse under the race detector), and the
// minimum is the standard robust estimator for "what does this cost when
// nothing else interferes".
const journalRounds = 3

func bestJournalRow(name string, items int, fsync time.Duration, journaled bool) (JournalRow, error) {
	var best JournalRow
	for r := 0; r < journalRounds; r++ {
		row, err := runJournalRow(name, items, fsync, journaled)
		if err != nil {
			return row, err
		}
		if r == 0 || row.ElapsedMS < best.ElapsedMS {
			best = row
		}
	}
	return best, nil
}

// RunJournalComparison measures the journal's overhead on the collatz
// profile: no journal vs the batched default vs fsync-per-record.
func RunJournalComparison(items int) (JournalComparison, error) {
	var cmp JournalComparison
	base, err := bestJournalRow("no-journal", items, 0, false)
	if err != nil {
		return cmp, err
	}
	batched, err := bestJournalRow("journal-batched", items, 0, true)
	if err != nil {
		return cmp, err
	}
	perRecord, err := bestJournalRow("journal-per-record", items, -1, true)
	if err != nil {
		return cmp, err
	}
	overhead := func(r JournalRow) float64 {
		if base.ElapsedMS <= 0 {
			return 0
		}
		return (r.ElapsedMS/base.ElapsedMS - 1) * 100
	}
	batched.OverheadPct = overhead(batched)
	perRecord.OverheadPct = overhead(perRecord)
	cmp.Rows = []JournalRow{base, batched, perRecord}
	cmp.OverheadDefaultPct = batched.OverheadPct
	cmp.OverheadPerRecordPct = perRecord.OverheadPct
	return cmp, nil
}

// RenderJournal prints the comparison in the reporter's table style.
func RenderJournal(w io.Writer, cmp JournalComparison) {
	fmt.Fprintf(w, "\nCheckpoint journal overhead on the collatz profile (see BENCH_journal.json)\n")
	fmt.Fprintf(w, "%-20s %-30s %8s %10s %10s\n", "row", "durability", "items/s", "elapsed", "overhead")
	for _, r := range cmp.Rows {
		fmt.Fprintf(w, "%-20s %-30s %8.1f %9.0fms %9.1f%%\n",
			r.Name, r.Durability, r.Throughput, r.ElapsedMS, r.OverheadPct)
	}
	fmt.Fprintf(w, "default batched-fsync overhead: %.1f%% (budget ≤ 15%%); per-record fsync: %.1f%%\n",
		cmp.OverheadDefaultPct, cmp.OverheadPerRecordPct)
}
