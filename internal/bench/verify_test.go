package bench

import "testing"

func TestVerifyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmp, err := RunVerify(60, 40, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(cmp.Rows))
	}
	var base, k2 float64
	for _, r := range cmp.Rows {
		if r.ItemsPerSec <= 0 {
			t.Errorf("row %s measured no throughput", r.Mode)
		}
		switch {
		case r.Mode == "baseline" && r.Items == 60*40:
			base = r.ItemsPerSec
		case r.Mode == "k2":
			k2 = r.ItemsPerSec
		}
	}
	// Quorum-everywhere k=2 doubles the executions behind every emitted
	// value, so it cannot plausibly beat the unreplicated baseline; a k2
	// rate above it means the replicas were not actually fanned out.
	if k2 > base*1.1 {
		t.Errorf("k2 rate %.0f exceeds baseline %.0f: replication is not happening", k2, base)
	}
	// The trusted cells must ride the fast-path for a meaningful share of
	// the stream — that is the mechanism whose recovery the experiment
	// measures. The throughput budget itself (≥ 80% on the longest
	// stream) is asserted against BENCH_verify.json, not here: a CI
	// machine's absolute rates are too noisy at this scale.
	for _, r := range cmp.Rows {
		if r.Mode == "k2-trusted" && r.Items == 60*40 && r.FastPathShare < 0.5 {
			t.Errorf("longest trusted cell rode the fast-path for only %.0f%% of results; want a majority",
				r.FastPathShare*100)
		}
	}
}
