package bench

import (
	"context"
	"fmt"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/transport"
)

// This file implements the evaluation's analysis experiments beyond the
// raw Table 2 cells (§5.5): the batch-size sweep that shows batching
// hides network latency (C1), the device-vs-server comparisons (C2), and
// the speedup over a single personal device (C4, the headline claim).

// SweepPoint is one measurement of the batch sweep.
type SweepPoint struct {
	Batch      int
	Latency    time.Duration
	Throughput float64 // items/s (simulated time)
}

var sweepSeq int

// RunBatchSweep measures throughput for each batch size over a link with
// the given one-way latency, using nWorkers identical workers with the
// given per-item compute time. It demonstrates claim C1: with a large
// enough batch, data transfers happen in parallel with the computations
// and hide the transmission latency (§5.5).
func RunBatchSweep(batches []int, latency time.Duration, itemTime time.Duration, nWorkers, items int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, b := range batches {
		sweepSeq++
		p := pando.New(
			fmt.Sprintf("sweep-%d", sweepSeq),
			func(w WorkItem) (Ack, error) { return Ack{Seq: w.Seq}, nil },
			pando.WithBatch(b),
			pando.WithChannelConfig(transport.Config{HeartbeatInterval: 50 * time.Millisecond}),
			pando.WithoutRegistry(),
		)
		link := netsim.Link{Latency: latency, Jitter: latency / 10, Bandwidth: 8 << 20}
		for w := 0; w < nWorkers; w++ {
			p.AddWorker(fmt.Sprintf("worker-%d", w+1), link, itemTime, -1)
		}
		inputs := make([]WorkItem, items)
		for i := range inputs {
			inputs[i] = WorkItem{Seq: i}
		}
		start := time.Now()
		if _, err := p.ProcessSlice(context.Background(), inputs); err != nil {
			p.Close()
			return nil, fmt.Errorf("bench: sweep batch %d: %w", b, err)
		}
		elapsed := time.Since(start)
		p.Close()
		out = append(out, SweepPoint{
			Batch:      b,
			Latency:    latency,
			Throughput: float64(items) / elapsed.Seconds(),
		})
	}
	return out, nil
}

// Claim is one of the paper's §5.5 analysis claims checked against the
// encoded profiles.
type Claim struct {
	ID     string
	Text   string
	Holds  bool
	Detail string
}

// deviceRate finds a device's per-core rate in a scenario.
func deviceRate(s Scenario, name string, app App) (float64, bool) {
	for _, d := range s.Devices {
		if d.Name == name {
			r, ok := d.Rates[app]
			return r / float64(d.Cores), ok
		}
	}
	return 0, false
}

// CheckClaims evaluates the §5.5 claims against the device profiles
// (which encode the paper's measurements), returning each claim and
// whether it holds. These are the qualitative findings our reproduction
// must preserve.
func CheckClaims() []Claim {
	var claims []Claim

	// C2a: "On Collatz, the iPhone SE outperforms the uvb.sophia from
	// Grid5000 and almost all PlanetLab server nodes."
	iphone, _ := deviceRate(LAN, "iPhone SE", Collatz)
	uvb, _ := deviceRate(VPN, "uvb.sophia", Collatz)
	beaten := 0
	for _, d := range WAN.Devices {
		if r, ok := d.Rates[Collatz]; ok && iphone > r/float64(d.Cores) {
			beaten++
		}
	}
	c2a := iphone > uvb && beaten >= len(WAN.Devices)-1
	claims = append(claims, Claim{
		ID:    "C2a",
		Text:  "iPhone SE beats uvb.sophia and almost all PlanetLab nodes on Collatz",
		Holds: c2a,
		Detail: fmt.Sprintf("iPhone %.0f vs uvb %.0f Bignum/s; beats %d/%d PlanetLab nodes",
			iphone, uvb, beaten, len(WAN.Devices)),
	})

	// C2b: "2-5 cores on recent personal devices can outperform the
	// fastest server core": MBPro 2016 cores vs dahu.grenoble.
	mbproPerCore, _ := deviceRate(LAN, "MBPro 2016", Collatz)
	dahu, _ := deviceRate(VPN, "dahu.grenoble", Collatz)
	coresNeeded := 0
	for c := 1; c <= 5; c++ {
		if float64(c)*mbproPerCore > dahu {
			coresNeeded = c
			break
		}
	}
	claims = append(claims, Claim{
		ID:    "C2b",
		Text:  "2-5 recent personal-device cores outperform the fastest server core",
		Holds: coresNeeded >= 1 && coresNeeded <= 5,
		Detail: fmt.Sprintf("%d MBPro-2016 cores (%.0f each) exceed dahu.grenoble's %.0f Bignum/s",
			coresNeeded, mbproPerCore, dahu),
	})

	// C2c: "The choice of browser can have dramatic effect: the iPhone SE
	// outperforms a single core on the MacBook Pro by 3.3x" (Safari vs
	// Firefox on ImgProc).
	iphoneImg, _ := deviceRate(LAN, "iPhone SE", ImgProc)
	mbproImg, _ := deviceRate(LAN, "MBPro 2016", ImgProc)
	ratio := 0.0
	if mbproImg > 0 {
		ratio = iphoneImg / mbproImg
	}
	claims = append(claims, Claim{
		ID:     "C2c",
		Text:   "iPhone SE outperforms a MacBook Pro core by ~3.3x on image processing",
		Holds:  ratio > 3.0 && ratio < 3.7,
		Detail: fmt.Sprintf("ratio = %.2fx", ratio),
	})

	// C4 (data side): every scenario's aggregate exceeds its best single
	// device on every app — using devices in parallel always helped.
	allFaster := true
	detail := ""
	for _, s := range Scenarios {
		for _, app := range Apps {
			total := s.Total(app)
			if total == 0 {
				continue
			}
			best := 0.0
			for _, d := range s.Devices {
				if d.Rates[app] > best {
					best = d.Rates[app]
				}
			}
			if total <= best {
				allFaster = false
				detail = fmt.Sprintf("%s/%s: total %.2f <= best %.2f", s.Name, app, total, best)
			}
		}
	}
	claims = append(claims, Claim{
		ID:     "C4",
		Text:   "aggregate throughput exceeds the best single device in every cell",
		Holds:  allFaster,
		Detail: detail,
	})

	return claims
}

// SpeedupResult compares the full LAN deployment against a single device
// for one app — the headline claim that Pando provides throughput
// improvements compared to a single personal device.
type SpeedupResult struct {
	App            App
	SingleDevice   string
	SingleMeasured float64
	AllMeasured    float64
	Speedup        float64
}

// RunSpeedup measures speedup of the full LAN device set over the single
// given device, end to end through the stack.
func RunSpeedup(app App, baseline string, opt Options) (SpeedupResult, error) {
	// Full set.
	all, err := RunCell(LAN, app, opt)
	if err != nil {
		return SpeedupResult{}, err
	}
	// Single-device scenario.
	var only *Device
	for i := range LAN.Devices {
		if LAN.Devices[i].Name == baseline {
			only = &LAN.Devices[i]
		}
	}
	if only == nil {
		return SpeedupResult{}, fmt.Errorf("bench: unknown baseline device %q", baseline)
	}
	single := Scenario{Name: "single", Link: LAN.Link, Batch: LAN.Batch, Devices: []Device{*only}}
	one, err := RunCell(single, app, opt)
	if err != nil {
		return SpeedupResult{}, err
	}
	res := SpeedupResult{
		App:            app,
		SingleDevice:   baseline,
		SingleMeasured: one.TotalMeasured,
		AllMeasured:    all.TotalMeasured,
	}
	if one.TotalMeasured > 0 {
		res.Speedup = all.TotalMeasured / one.TotalMeasured
	}
	return res, nil
}
