package bench

import (
	"os"
	"strconv"
	"testing"

	"pando/internal/proto"
)

// TestHotpathCodecZeroAlloc is the CI gate on the codec half of the
// experiment: the pooled v2 path must stay at 0 allocs/op in both
// directions, and the measurement itself must keep showing the unpooled
// baseline paying per-frame allocations (otherwise the comparison no
// longer measures anything).
func TestHotpathCodecZeroAlloc(t *testing.T) {
	for _, c := range MeasureHotpathCodec(proto.V2, 1024) {
		if c.AllocsPerOp != 0 {
			t.Errorf("pooled v2 %s: %d allocs/op, want 0", c.Op, c.AllocsPerOp)
		}
	}
	for _, c := range MeasureHotpathCodec(proto.V2Unpooled, 1024) {
		if c.AllocsPerOp == 0 {
			t.Errorf("unpooled v2 %s reports 0 allocs/op; the baseline is no longer a baseline", c.Op)
		}
	}
}

// TestHotpathProfileSmoke runs one small fleet through both data planes:
// the throughput harness must produce every result on both, whatever the
// machine's speed.
func TestHotpathProfileSmoke(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		if _, err := RunHotpathProfile(50, 500, 1024, pooled); err != nil {
			t.Errorf("pooled=%v: %v", pooled, err)
		}
	}
}

// TestHotpathProfileManual is a profiling hook, not a test: set
// HOTPATH_WORKERS (and optionally HOTPATH_POOLED=0, HOTPATH_PAYLOAD)
// and run with -cpuprofile/-memprofile to see where a fleet-scale run
// spends its time.
func TestHotpathProfileManual(t *testing.T) {
	w, err := strconv.Atoi(os.Getenv("HOTPATH_WORKERS"))
	if err != nil || w <= 0 {
		t.Skip("set HOTPATH_WORKERS to run")
	}
	pooled := os.Getenv("HOTPATH_POOLED") != "0"
	payload := 16384
	if p, err := strconv.Atoi(os.Getenv("HOTPATH_PAYLOAD")); err == nil && p > 0 {
		payload = p
	}
	rate, err := RunHotpathProfile(w, w*10, payload, pooled)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d workers pooled=%v payload=%d: %.0f items/s", w, pooled, payload, rate)
}
