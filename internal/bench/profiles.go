// Package bench is the evaluation harness: it regenerates the shape of
// every table and figure of the paper's evaluation (Section 5) on the
// simulated network substrate.
//
// Substitution: the paper measured real devices (an iPhone SE, MacBooks,
// Grid5000 and PlanetLab nodes). We encode the paper's measured per-app
// service rates as device profiles and give each simulated volunteer a
// per-item compute delay derived from them, compressed by TimeScale so a
// full Table 2 run completes in seconds. The end-to-end throughput is then
// measured through the real Pando stack (StreamLender, Limiter, framed
// transport, heartbeats, simulated LAN/VPN/WAN links), so coordination
// effects — batching hiding latency, adaptive lending, ordered merging —
// are real, while raw device speed is calibrated.
package bench

import "pando/internal/netsim"

// App identifies one of the evaluation's six applications (Arxiv is
// excluded, as in the paper, because its processing is done by a human).
type App string

// The six applications of Table 2.
const (
	Collatz  App = "Collatz"
	Crypto   App = "Crypto-Mining"
	SLTest   App = "StreamLender-Testing"
	Raytrace App = "Raytrace"
	ImgProc  App = "Image-Process."
	MLAgent  App = "MLAgent-Training"
)

// Apps lists the Table 2 columns in the paper's order.
var Apps = []App{Collatz, Crypto, SLTest, Raytrace, ImgProc, MLAgent}

// Unit is the throughput unit of each column.
var Unit = map[App]string{
	Collatz:  "Bignum/s",
	Crypto:   "Hashes/s",
	SLTest:   "Tests/s",
	Raytrace: "Frames/s",
	ImgProc:  "Images/s",
	MLAgent:  "Steps/s",
}

// UnitsPerItem converts between one Pando input (one work item) and the
// throughput unit of the column: e.g. one mining attempt tests 4096
// hashes, one Collatz input performs ~250 big-number operations. The
// values are chosen so per-item compute times stay within the same order
// of magnitude across apps after calibration.
var UnitsPerItem = map[App]float64{
	Collatz:  250,
	Crypto:   40960,
	SLTest:   500,
	Raytrace: 1,
	ImgProc:  0.25,
	MLAgent:  150,
}

// Device is one row of Table 2: a device profile with its measured
// service rate for each application, in the column's unit per second,
// using the number of cores the paper used (shown in brackets in the
// table).
type Device struct {
	Name  string
	Cores int
	// Rates are the paper's measured throughputs (units/s) for the whole
	// device; zero means the application was not run on this device.
	Rates map[App]float64
}

// Scenario is one block of Table 2: a deployment setting with its link
// profile, batch size and participating devices.
type Scenario struct {
	Name    string
	Link    netsim.Link
	Batch   int
	Devices []Device
}

// The three deployment scenarios of the evaluation, §5.2-5.4, with the
// paper's measured rates (Table 2).
var (
	// LAN is the personal-devices experiment (§5.2): Wi-Fi, batch 2.
	LAN = Scenario{
		Name:  "LAN: Personal Devices",
		Link:  netsim.LAN,
		Batch: 2,
		Devices: []Device{
			{Name: "Novena", Cores: 2, Rates: map[App]float64{
				Collatz: 121.85, Crypto: 16185, SLTest: 142.84, Raytrace: 0.66, ImgProc: 0.04, MLAgent: 51.74}},
			{Name: "Asus Laptop", Cores: 3, Rates: map[App]float64{
				Collatz: 490.45, Crypto: 59895, SLTest: 622.64, Raytrace: 3.63, ImgProc: 0.10, MLAgent: 112.59}},
			{Name: "MBAir 2011", Cores: 1, Rates: map[App]float64{
				Collatz: 215.58, Crypto: 58693, SLTest: 526.82, Raytrace: 2.94, ImgProc: 0.06, MLAgent: 68.81}},
			{Name: "iPhone SE", Cores: 1, Rates: map[App]float64{
				Collatz: 336.18, Crypto: 42720, SLTest: 509.64, Raytrace: 2.90, ImgProc: 0.33, MLAgent: 60.24}},
			{Name: "MBPro 2016", Cores: 2, Rates: map[App]float64{
				Collatz: 1045.58, Crypto: 201178, SLTest: 1801.76, Raytrace: 8.81, ImgProc: 0.19, MLAgent: 191.51}},
		},
	}

	// VPN is the Grid5000 experiment (§5.3): one core per cluster node,
	// WebSocket transport, batch 2.
	VPN = Scenario{
		Name:  "VPN: Grid5000 Nodes",
		Link:  netsim.VPN,
		Batch: 2,
		Devices: []Device{
			{Name: "dahu.grenoble", Cores: 1, Rates: map[App]float64{
				Collatz: 642.04, Crypto: 230061, SLTest: 1341.77, Raytrace: 3.12, ImgProc: 0.44, MLAgent: 219.18}},
			{Name: "chetemy.lille", Cores: 1, Rates: map[App]float64{
				Collatz: 524.71, Crypto: 206195, SLTest: 975.58, Raytrace: 2.04, ImgProc: 0.37, MLAgent: 167.03}},
			{Name: "petitprince.luxembourg", Cores: 1, Rates: map[App]float64{
				Collatz: 261.36, Crypto: 136189, SLTest: 631.83, Raytrace: 1.47, ImgProc: 0.27, MLAgent: 124.00}},
			{Name: "nova.lyon", Cores: 1, Rates: map[App]float64{
				Collatz: 521.35, Crypto: 199901, SLTest: 982.16, Raytrace: 1.95, ImgProc: 0.34, MLAgent: 164.57}},
			{Name: "grisou.nancy", Cores: 1, Rates: map[App]float64{
				Collatz: 541.53, Crypto: 216932, SLTest: 1026.26, Raytrace: 2.17, ImgProc: 0.36, MLAgent: 176.12}},
			{Name: "ecotype.nantes", Cores: 1, Rates: map[App]float64{
				Collatz: 479.07, Crypto: 187668, SLTest: 939.07, Raytrace: 1.86, ImgProc: 0.33, MLAgent: 162.25}},
			{Name: "paravance.rennes", Cores: 1, Rates: map[App]float64{
				Collatz: 535.72, Crypto: 215096, SLTest: 1021.99, Raytrace: 2.19, ImgProc: 0.35, MLAgent: 176.41}},
			{Name: "uvb.sophia", Cores: 1, Rates: map[App]float64{
				Collatz: 317.73, Crypto: 142061, SLTest: 641.26, Raytrace: 1.57, ImgProc: 0.28, MLAgent: 133.88}},
		},
	}

	// WAN is the PlanetLab EU experiment (§5.4): WebRTC transport, batch
	// 4. Image processing is absent: the paper's http server was not
	// reachable from outside the LAN/VPN, which we reproduce by omitting
	// the column.
	WAN = Scenario{
		Name:  "WAN: PlanetLab EU Nodes",
		Link:  netsim.WAN,
		Batch: 4,
		Devices: []Device{
			{Name: "cse-yellow.cse.chalmers.se", Cores: 1, Rates: map[App]float64{
				Collatz: 470.49, Crypto: 162173, SLTest: 996.89, Raytrace: 0.74, MLAgent: 148.85}},
			{Name: "mars.planetlab.haw-hamburg.de", Cores: 1, Rates: map[App]float64{
				Collatz: 225.38, Crypto: 93189, SLTest: 428.30, Raytrace: 0.64, MLAgent: 78.66}},
			{Name: "ple42.planet-lab.eu", Cores: 1, Rates: map[App]float64{
				Collatz: 210.15, Crypto: 82297, SLTest: 444.35, Raytrace: 0.54, MLAgent: 81.17}},
			{Name: "onelab2.pl.sophia.inria.fr", Cores: 1, Rates: map[App]float64{
				Collatz: 201.43, Crypto: 95609, SLTest: 459.66, Raytrace: 0.68, MLAgent: 83.57}},
			{Name: "planet2.elte.hu", Cores: 1, Rates: map[App]float64{
				Collatz: 216.42, Crypto: 85927, SLTest: 505.04, Raytrace: 0.73, MLAgent: 99.75}},
			{Name: "planet4.cs.huji.ac.il", Cores: 1, Rates: map[App]float64{
				Collatz: 298.42, Crypto: 112363, SLTest: 651.54, Raytrace: 0.77, MLAgent: 119.62}},
			{Name: "ple1.cesnet.cz", Cores: 1, Rates: map[App]float64{
				Collatz: 223.22, Crypto: 85927, SLTest: 499.27, Raytrace: 0.65, MLAgent: 102.76}},
		},
	}
)

// Scenarios lists the three blocks of Table 2 in order.
var Scenarios = []Scenario{LAN, VPN, WAN}

// Total returns the paper's aggregate rate for an app across a scenario's
// devices (the bold totals of Table 2).
func (s Scenario) Total(app App) float64 {
	var t float64
	for _, d := range s.Devices {
		t += d.Rates[app]
	}
	return t
}

// Share returns the paper's % column for a device and app.
func (s Scenario) Share(deviceName string, app App) float64 {
	total := s.Total(app)
	if total == 0 {
		return 0
	}
	for _, d := range s.Devices {
		if d.Name == deviceName {
			return 100 * d.Rates[app] / total
		}
	}
	return 0
}
