package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/shard"
	"pando/internal/transport"
)

// This file measures what sharding the master buys: the single
// dispatcher's outbound capacity is the whole-deployment bottleneck the
// moment the volunteer fleet outgrows it, and partitioning the stream
// across N shard masters multiplies that capacity by N. The model is the
// paper's deployment shape taken seriously: a master serves its fleet
// through one uplink, so every volunteer pipe is paced at uplink/W —
// netsim's bandwidth pacing turns the contended link into timer waits,
// which parallelize honestly on any core count, while the aggregate rate
// stays far below the process's measured dispatch ceiling (~15k items/s
// at 10k sessions, BENCH_hotpath.json) so the scaling read is about the
// architecture, not the CPU.

// DefaultShardUplink is the modeled per-master uplink: a commodity
// 32 Mbit/s link carrying all of that master's volunteer traffic — the
// deployment the paper targets, where the master is an ordinary host,
// not a datacenter ingress. Narrow enough that pacing (the architecture)
// stays the bottleneck through 8 shards instead of this process's own
// dispatch ceiling.
const DefaultShardUplink = int64(4 << 20)

// ShardProfile is one throughput cell: the same identity workload pushed
// through `Shards` cooperating masters (0 = the plain unsharded master
// baseline), with the fleet split evenly among them.
type ShardProfile struct {
	// Shards is the shard-group width; 0 marks the single-master
	// baseline (no group, no segments, no merge layer).
	Shards       int
	Workers      int
	Items        int
	PayloadBytes int
	ItemsPerSec  float64
	// SpeedupVsBaseline is ItemsPerSec over the baseline cell's.
	SpeedupVsBaseline float64
	// LinearFraction is ItemsPerSec over Shards x the one-shard cell's
	// rate — 1.0 is perfectly linear scaling.
	LinearFraction float64
}

// ShardComparison is the whole experiment, persisted as BENCH_shard.json.
type ShardComparison struct {
	Workers           int
	ItemsPerWorker    int
	PayloadBytes      int
	UplinkBytesPerSec int64
	Profiles          []ShardProfile
}

// RunShardProfile runs one cell: `workers` netsim volunteers, each pipe
// paced at uplink/workersPerMaster, identity-mapping `items` payloads of
// `payload` bytes, and reports end-to-end items/sec of the globally
// ordered output. shards == 0 runs the plain single master; shards >= 1
// runs a shard group of that width with the fleet split evenly across
// the slots. Heartbeats are off; the measurement is dispatch + pacing.
func RunShardProfile(shards, workers, items, payload int, uplink int64) (float64, error) {
	cfg := master.Config{
		FuncName: "identity",
		Batch:    8,
		Ordered:  true,
		Channel:  transport.Config{HeartbeatInterval: -1},
	}
	raw := transport.RawCodec{}

	masters := shards
	if masters < 1 {
		masters = 1
	}
	perShard := workers / masters
	if perShard < 1 {
		return 0, fmt.Errorf("bench: %d workers cannot cover %d shards", workers, masters)
	}
	link := netsim.Link{
		Latency:   2 * time.Millisecond,
		Bandwidth: uplink / int64(perShard),
	}

	attach := func(slot int, name string, ch transport.Channel) {}
	var bind func(pullstream.Source[[]byte]) pullstream.Source[[]byte]
	if shards == 0 {
		m := master.New[[]byte, []byte](cfg, raw, raw)
		defer m.Close()
		attach = func(_ int, name string, ch transport.Channel) { m.Attach(name, ch) }
		bind = m.Bind
	} else {
		dir, err := os.MkdirTemp("", "bench-shard-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		g, err := shard.New[[]byte, []byte](nil, shard.Config{
			Shards: shards,
			Dir:    dir,
			Master: cfg,
		}, raw, raw)
		if err != nil {
			return 0, err
		}
		defer g.Close()
		attach = g.Attach
		bind = g.Bind
	}

	pipes := make([]*netsim.Pipe, 0, workers)
	defer func() {
		for _, p := range pipes {
			p.Cut()
		}
	}()
	identity := func(b []byte) ([]byte, error) { return b, nil }
	for i := 0; i < workers; i++ {
		p := netsim.NewPipe(link)
		pipes = append(pipes, p)
		wch := transport.NewWSock(p.A, cfg.Channel)
		mch := transport.NewWSock(p.B, cfg.Channel)
		go func() {
			_ = transport.WorkerServeGrouped[[]byte, []byte](wch, raw, raw, identity)
		}()
		attach(i%masters, fmt.Sprintf("w%d", i), mch)
	}

	tile := hotpathPayload(payload)
	src := pullstream.Take[[]byte](items)(pullstream.Infinite(func(int) []byte { return tile }))

	start := time.Now()
	got := 0
	err := pullstream.Drain(bind(src), func(b []byte) error {
		if len(b) != payload {
			return fmt.Errorf("bench: result %d is %d bytes, want %d", got, len(b), payload)
		}
		got++
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, err
	}
	if got != items {
		return 0, fmt.Errorf("bench: %d results, want %d", got, items)
	}
	return float64(items) / elapsed.Seconds(), nil
}

// ShardRunner executes one shard measurement and returns its items/sec.
// cmd/pando-bench supplies a runner that re-executes itself so every
// cell gets a fresh process; RunShard's in-process default serves tests.
type ShardRunner func(shards, workers, items, payload int, uplink int64) (float64, error)

// RunShard runs the whole experiment in-process: the single-master
// baseline, then each shard width, all over the same fleet size and
// stream length so the rates compare directly.
func RunShard(shardCounts []int, workers, itemsPerWorker, payload int, uplink int64) (ShardComparison, error) {
	return RunShardWith(shardCounts, workers, itemsPerWorker, payload, uplink, settledShardRun)
}

// RunShardWith is RunShard with a pluggable per-cell runner (see
// RunHotpathWith for why fresh-process isolation matters).
func RunShardWith(shardCounts []int, workers, itemsPerWorker, payload int, uplink int64, run ShardRunner) (ShardComparison, error) {
	cmp := ShardComparison{
		Workers:           workers,
		ItemsPerWorker:    itemsPerWorker,
		PayloadBytes:      payload,
		UplinkBytesPerSec: uplink,
	}
	items := workers * itemsPerWorker

	base, err := run(0, workers, items, payload, uplink)
	if err != nil {
		return cmp, fmt.Errorf("baseline: %w", err)
	}
	cmp.Profiles = append(cmp.Profiles, ShardProfile{
		Shards: 0, Workers: workers, Items: items, PayloadBytes: payload,
		ItemsPerSec: base, SpeedupVsBaseline: 1,
	})

	oneShard := base // until the shards=1 cell runs, linearity is vs baseline
	for _, s := range shardCounts {
		rate, err := run(s, workers, items, payload, uplink)
		if err != nil {
			return cmp, fmt.Errorf("%d shards: %w", s, err)
		}
		if s == 1 {
			oneShard = rate
		}
		cmp.Profiles = append(cmp.Profiles, ShardProfile{
			Shards: s, Workers: workers, Items: items, PayloadBytes: payload,
			ItemsPerSec:       rate,
			SpeedupVsBaseline: rate / base,
			LinearFraction:    rate / (float64(s) * oneShard),
		})
	}
	return cmp, nil
}

func settledShardRun(shards, workers, items, payload int, uplink int64) (float64, error) {
	settle()
	return RunShardProfile(shards, workers, items, payload, uplink)
}

// RenderShard prints the comparison as a readable table.
func RenderShard(w io.Writer, cmp ShardComparison) {
	fmt.Fprintf(w, "sharded masters (identity map, %d workers, %d B payload, %.1f MB/s modeled uplink per master):\n",
		cmp.Workers, cmp.PayloadBytes, float64(cmp.UplinkBytesPerSec)/(1<<20))
	for _, p := range cmp.Profiles {
		label := fmt.Sprintf("%d shards", p.Shards)
		if p.Shards == 0 {
			label = "baseline"
		}
		fmt.Fprintf(w, "  %-9s %8d items  %10.0f items/s  %5.2fx vs baseline  linear %.2f\n",
			label, p.Items, p.ItemsPerSec, p.SpeedupVsBaseline, p.LinearFraction)
	}
}
