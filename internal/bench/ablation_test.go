package bench

import (
	"testing"
	"time"
)

func TestFailureDetectionScalesWithInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := RunFailureDetection([]time.Duration{
		10 * time.Millisecond, 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		// Detection must happen within a few timeouts (timeout = 3x
		// interval by default) — the partial-synchrony bound.
		if p.Detection > 6*3*p.HeartbeatInterval {
			t.Errorf("interval %v: detection took %v, far beyond the timeout",
				p.HeartbeatInterval, p.Detection)
		}
	}
	// Longer intervals detect more slowly (the trade-off the ablation
	// demonstrates); allow generous slack for scheduling noise.
	if points[1].Detection < points[0].Detection/2 {
		t.Errorf("detection at 40ms interval (%v) unexpectedly faster than at 10ms (%v)",
			points[1].Detection, points[0].Detection)
	}
}

func TestOrderingAblationThroughputClose(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p, err := RunOrderingAblation(3, 150, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// Declarative concurrency: ordering must not cost much throughput.
	ratio := p.OrderedItems / p.UnorderedItems
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("ordered %.1f vs unordered %.1f items/s (ratio %.2f); expected near parity",
			p.OrderedItems, p.UnorderedItems, ratio)
	}
	if p.OrderedFirstOut <= 0 {
		t.Error("first-output latency not measured")
	}
}

func TestBatchAdaptivityTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := RunBatchAdaptivity([]int{2, 32}, 120)
	if err != nil {
		t.Fatal(err)
	}
	small, big := points[0], points[1]
	// With a small bound the fast device's share approaches its fair
	// share; a huge bound lets the slow device hoard inputs, so the fast
	// device's share drops and completion slows.
	if small.ActualShare < big.ActualShare {
		t.Errorf("batch 2 share %.2f < batch 32 share %.2f; small bounds should balance better",
			small.ActualShare, big.ActualShare)
	}
	if small.ActualShare < 0.7 {
		t.Errorf("batch 2: fast device got %.2f of items, want close to ideal %.2f",
			small.ActualShare, small.IdealShare)
	}
}

func TestGroupingComparisonHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := RunGroupingComparison([]int{1, 8}, 20*time.Millisecond, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	plain, grouped := points[0], points[1]
	if grouped.Throughput < plain.Throughput*1.3 {
		t.Errorf("group 8 (%.0f items/s) should clearly beat plain (%.0f items/s) for tiny items over 20ms latency",
			grouped.Throughput, plain.Throughput)
	}
}
