package bench

import (
	"bytes"
	"encoding/json"
	"fmt"

	"pando/internal/proto"
)

// This file measures what the '/pando/2.1.0' binary wire format buys over
// the '/pando/1.0.0' JSON framing, on the two workload shapes the paper's
// evaluation spans: small JSON-ish items (collatz starting integers,
// Table 2's Bignum workload) where the envelope dominates, and large
// opaque payloads (imgproc tiles, §4.1) where v1's base64 inflation of
// Data dominates. The comparison feeds the BenchmarkWire* benchmarks and
// the bytes-on-wire regression test.

// WirePayloads builds representative encoded payloads for one workload.
type WirePayloads struct {
	// Name identifies the workload ("collatz" or "imgproc").
	Name string
	// Items are the encoded payloads exactly as a payload codec would
	// hand them to the transport (JSON for collatz, raw for imgproc).
	Items [][]byte
}

// CollatzWirePayloads encodes n collatz inputs the way the deployment
// does: JSON-marshalled decimal strings, a few dozen bytes each.
func CollatzWirePayloads(n int) WirePayloads {
	items := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		data, _ := json.Marshal(fmt.Sprintf("%d", 1_000_000_000+i))
		items = append(items, data)
	}
	return WirePayloads{Name: "collatz", Items: items}
}

// ImgprocWirePayloads generates n raw tile payloads of the given edge
// size, the []byte-shaped workload RawCodec carries verbatim: grayscale
// pixels with tile-dependent content, incompressible from the framing
// layer's point of view.
func ImgprocWirePayloads(n, edge int) WirePayloads {
	items := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		tile := make([]byte, edge*edge)
		for j := range tile {
			tile[j] = byte(i*31 + j*7)
		}
		items = append(items, tile)
	}
	return WirePayloads{Name: "imgproc", Items: items}
}

// WireCost is the measured cost of moving one workload's payloads through
// a wire format.
type WireCost struct {
	Format string
	// FrameBytes is the total bytes-on-wire for one input frame per item
	// (plain data plane).
	FrameBytes int
	// BatchBytes is the total bytes-on-wire with all items grouped into
	// a single batch frame (grouped data plane).
	BatchBytes int
}

// MeasureWire encodes every payload of w through wf — once as individual
// input frames, once as one grouped batch frame — and counts the bytes
// that would cross the network. Frames are decoded back and verified, so
// the numbers describe working round trips, not just encoders.
func MeasureWire(wf proto.WireFormat, w WirePayloads) (WireCost, error) {
	cost := WireCost{Format: wf.Name()}

	var buf bytes.Buffer
	for i, item := range w.Items {
		buf.Reset()
		m := &proto.Message{Type: proto.TypeInput, Seq: uint64(i + 1), Data: item}
		if err := wf.WriteFrame(&buf, m); err != nil {
			return cost, fmt.Errorf("bench: %s frame %d: %w", wf.Name(), i, err)
		}
		cost.FrameBytes += buf.Len()
		back, err := wf.ReadFrame(&buf)
		if err != nil {
			return cost, fmt.Errorf("bench: %s read %d: %w", wf.Name(), i, err)
		}
		if !bytes.Equal(back.Data, item) {
			return cost, fmt.Errorf("bench: %s frame %d corrupted payload", wf.Name(), i)
		}
	}

	items := make([]proto.BatchItem, 0, len(w.Items))
	for _, item := range w.Items {
		items = append(items, proto.BatchItem{D: item})
	}
	data, err := wf.EncodeBatch(items)
	if err != nil {
		return cost, fmt.Errorf("bench: %s batch: %w", wf.Name(), err)
	}
	buf.Reset()
	if err := wf.WriteFrame(&buf, &proto.Message{Type: proto.TypeInputBatch, Seq: 1, Data: data}); err != nil {
		return cost, fmt.Errorf("bench: %s batch frame: %w", wf.Name(), err)
	}
	cost.BatchBytes = buf.Len()
	back, err := wf.ReadFrame(&buf)
	if err != nil {
		return cost, fmt.Errorf("bench: %s batch read: %w", wf.Name(), err)
	}
	decoded, err := proto.DecodeBatch(back.Data)
	if err != nil {
		return cost, fmt.Errorf("bench: %s batch decode: %w", wf.Name(), err)
	}
	if len(decoded) != len(w.Items) {
		return cost, fmt.Errorf("bench: %s batch lost items: %d != %d", wf.Name(), len(decoded), len(w.Items))
	}
	return cost, nil
}

// CompareWire measures both formats on w and returns v1, v2.
func CompareWire(w WirePayloads) (WireCost, WireCost, error) {
	v1, err := MeasureWire(proto.V1, w)
	if err != nil {
		return v1, WireCost{}, err
	}
	v2, err := MeasureWire(proto.V2, w)
	return v1, v2, err
}
