package bench

import "testing"

// Small-scale smoke: the shard cells complete, produce positive rates,
// and a 2-shard group over a bandwidth-bound fleet beats the single
// master whose uplink it doubles.
func TestRunShardSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke")
	}
	// 40 workers, 2 items each, 2 KB payloads, a deliberately narrow
	// uplink (256 KB/s) so pacing — not CPU — is the bottleneck even at
	// toy scale.
	cmp, err := RunShardWith([]int{1, 2}, 40, 2, 2048, 256<<10,
		func(shards, workers, items, payload int, uplink int64) (float64, error) {
			return RunShardProfile(shards, workers, items, payload, uplink)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Profiles) != 3 {
		t.Fatalf("profiles = %d, want 3", len(cmp.Profiles))
	}
	for _, p := range cmp.Profiles {
		if p.ItemsPerSec <= 0 {
			t.Fatalf("cell %d shards: rate %f", p.Shards, p.ItemsPerSec)
		}
	}
	base, two := cmp.Profiles[0].ItemsPerSec, cmp.Profiles[2].ItemsPerSec
	if two < base*1.3 {
		t.Errorf("2 shards = %.0f items/s, baseline = %.0f; expected a clear win on a bandwidth-bound fleet", two, base)
	}
}
