package bench

import "testing"

// TestJournalOverheadBudget runs the journal experiment at test scale and
// enforces the acceptance budget: the batched-fsync default must cost at
// most 15% end-to-end on the collatz profile. The per-record extreme is
// only sanity-checked (it pays one fsync per result by design).
func TestJournalOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips timing-sensitive bench")
	}
	cmp, err := RunJournalComparison(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(cmp.Rows))
	}
	for _, r := range cmp.Rows {
		if r.Throughput <= 0 {
			t.Fatalf("row %s measured no throughput", r.Name)
		}
	}
	if cmp.OverheadDefaultPct > 15 {
		t.Fatalf("batched-fsync journal overhead = %.1f%%, budget is 15%%", cmp.OverheadDefaultPct)
	}
}
