package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderTable2 prints regenerated cells in the layout of the paper's
// Table 2: one block per scenario, devices as rows, applications as
// column pairs (measured rate and % share), with paper values alongside
// for comparison.
func RenderTable2(w io.Writer, cells []CellResult) {
	byScenario := map[string][]CellResult{}
	var order []string
	for _, c := range cells {
		if _, seen := byScenario[c.Scenario]; !seen {
			order = append(order, c.Scenario)
		}
		byScenario[c.Scenario] = append(byScenario[c.Scenario], c)
	}
	for _, scenario := range order {
		group := byScenario[scenario]
		fmt.Fprintf(w, "\n%s\n%s\n", scenario, strings.Repeat("=", len(scenario)))
		// Header.
		fmt.Fprintf(w, "%-30s", "Device")
		for _, c := range group {
			fmt.Fprintf(w, " | %22s", fmt.Sprintf("%s (%s)", c.App, Unit[c.App]))
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-30s", "")
		for range group {
			fmt.Fprintf(w, " | %10s %5s %5s", "measured", "m%", "p%")
		}
		fmt.Fprintln(w)

		// Device rows (devices are identical across the group's cells).
		if len(group) == 0 {
			continue
		}
		for i := range group[0].Rows {
			fmt.Fprintf(w, "%-30s", group[0].Rows[i].Device)
			for _, c := range group {
				r := c.Rows[i]
				fmt.Fprintf(w, " | %10.2f %5.1f %5.1f", r.Measured, r.MeasuredShare, r.PaperShare)
			}
			fmt.Fprintln(w)
		}
		// Totals.
		fmt.Fprintf(w, "%-30s", "TOTAL (measured / paper)")
		for _, c := range group {
			fmt.Fprintf(w, " | %10.2f /%9.2f", c.TotalMeasured, c.TotalPaper)
		}
		fmt.Fprintln(w)
	}
}

// RenderSweep prints the batch sweep series (claim C1).
func RenderSweep(w io.Writer, points []SweepPoint) {
	fmt.Fprintf(w, "\nBatch-size sweep (one-way latency %v)\n", points[0].Latency)
	fmt.Fprintf(w, "%8s  %14s\n", "batch", "items/s")
	for _, p := range points {
		fmt.Fprintf(w, "%8d  %14.1f\n", p.Batch, p.Throughput)
	}
}

// RenderClaims prints the §5.5 claim checks.
func RenderClaims(w io.Writer, claims []Claim) {
	fmt.Fprintln(w, "\nAnalysis claims (paper §5.5):")
	for _, c := range claims {
		status := "HOLDS"
		if !c.Holds {
			status = "FAILS"
		}
		fmt.Fprintf(w, "  [%s] %-5s %s — %s\n", c.ID, status, c.Text, c.Detail)
	}
}

// RenderAblations prints the design-choice ablation results.
func RenderAblations(w io.Writer, det []DetectionPoint, ord OrderingPoint, adapt []AdaptivityPoint) {
	fmt.Fprintln(w, "\nAblation: heartbeat interval vs crash-detection latency (§2.4.1)")
	fmt.Fprintf(w, "%12s %12s %12s\n", "interval", "timeout", "detected in")
	for _, p := range det {
		to := p.Timeout
		if to == 0 {
			to = 3 * p.HeartbeatInterval
		}
		fmt.Fprintf(w, "%12v %12v %12v\n", p.HeartbeatInterval, to, p.Detection.Round(time.Millisecond))
	}

	fmt.Fprintf(w, "\nAblation: ordered vs unordered output (%d workers, §4.2)\n", ord.Workers)
	fmt.Fprintf(w, "  ordered   %.1f items/s (first output after %v)\n",
		ord.OrderedItems, ord.OrderedFirstOut.Round(time.Millisecond))
	fmt.Fprintf(w, "  unordered %.1f items/s\n", ord.UnorderedItems)

	fmt.Fprintln(w, "\nAblation: Limiter bound vs adaptivity (fast+slow device, 10x speed gap, §2.4.3)")
	fmt.Fprintf(w, "%8s %12s %14s %14s\n", "batch", "elapsed", "fast share", "ideal share")
	for _, p := range adapt {
		fmt.Fprintf(w, "%8d %12v %13.1f%% %13.1f%%\n",
			p.Batch, p.Elapsed.Round(time.Millisecond), 100*p.ActualShare, 100*p.IdealShare)
	}
}

// RenderGrouping prints the grouped-frames comparison.
func RenderGrouping(w io.Writer, points []GroupingPoint) {
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "\nExtension: inputs per frame vs throughput (tiny items, %v one-way latency)\n", points[0].Latency)
	fmt.Fprintf(w, "%8s %14s\n", "group", "items/s")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %14.1f\n", p.Group, p.Throughput)
	}
}

// RenderSpeedup prints a speedup comparison (the headline claim).
func RenderSpeedup(w io.Writer, r SpeedupResult) {
	fmt.Fprintf(w, "\n%s: all LAN devices %.2f %s vs %s alone %.2f => speedup %.2fx\n",
		r.App, r.AllMeasured, Unit[r.App], r.SingleDevice, r.SingleMeasured, r.Speedup)
}
