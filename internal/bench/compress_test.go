package bench

import (
	"testing"

	"pando/internal/proto"
)

// TestCompressCodecZeroAlloc is the CI gate on the new format: the
// '/pando/2.2.0' codec must hold the pooled hot path's 0 allocs/op
// steady state with compression engaged — the hotpath payload is
// compressible, so the write side exercises the DEFLATE path and the
// read side the inflate path.
func TestCompressCodecZeroAlloc(t *testing.T) {
	for _, c := range MeasureHotpathCodec(proto.NewCompressedWire(), 16384) {
		if c.AllocsPerOp != 0 {
			t.Errorf("v3 %s: %d allocs/op, want 0", c.Op, c.AllocsPerOp)
		}
	}
}

// TestCompressProfileSmoke runs every workload through both wires on a
// small fleet: the harness must produce every result and count bytes on
// both, whatever the machine's speed.
func TestCompressProfileSmoke(t *testing.T) {
	for wl, name := range CompressWorkloadNames {
		for _, v3 := range []bool{false, true} {
			rate, wireBytes, err := RunCompressProfile(wl, v3, 20, 100, 4096, 0)
			if err != nil {
				t.Fatalf("%s v3=%v: %v", name, v3, err)
			}
			if rate <= 0 || wireBytes <= 0 {
				t.Fatalf("%s v3=%v: rate %f, bytes %d", name, v3, rate, wireBytes)
			}
		}
	}
}

// TestCompressSavesWireBytes pins the direction of the headline effects
// at test scale: the compressible workload must cross the wire in far
// fewer bytes on v3, the repeated workload must collapse under dedup,
// and the incompressible workload must not inflate.
func TestCompressSavesWireBytes(t *testing.T) {
	measure := func(wl int, v3 bool) int64 {
		t.Helper()
		_, wireBytes, err := RunCompressProfile(wl, v3, 10, 80, 8192, 0)
		if err != nil {
			t.Fatalf("workload %d v3=%v: %v", wl, v3, err)
		}
		return wireBytes
	}
	if base, v3 := measure(WorkloadCompressible, false), measure(WorkloadCompressible, true); v3 > base*7/10 {
		t.Errorf("compressible: v3 sent %d of %d baseline bytes, want ≤70%%", v3, base)
	}
	if base, v3 := measure(WorkloadRepeated, false), measure(WorkloadRepeated, true); v3 > base/2 {
		t.Errorf("repeated: v3 sent %d of %d baseline bytes, want ≤50%%", v3, base)
	}
	if base, v3 := measure(WorkloadIncompressible, false), measure(WorkloadIncompressible, true); v3 > base+base/20 {
		t.Errorf("incompressible: v3 sent %d of %d baseline bytes, want within 5%%", v3, base)
	}
}
