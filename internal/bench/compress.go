package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"pando/internal/blob"
	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/transport"
)

// This file measures what the bandwidth-aware data plane buys: the same
// fleet-scale workload pushed over the plain '/pando/2.1.0' wire and
// over '/pando/2.2.0' with adaptive frame compression and payload dedup.
// Three payload regimes bound the behaviour from both sides —
// compressible tiles show the DEFLATE layer's byte savings, a repeated
// payload shows dedup collapsing retransmissions into digest references,
// and unique random payloads pin the cost of the adaptive policy when
// neither optimization can help (the within-3% criterion). The fleet
// shares the master's modeled uplink (each volunteer pipe is paced at
// uplink/W, the model the shard experiment established), so under the
// plain wire payload bytes are the wall-clock bottleneck and saved bytes
// translate into saved time the way they do on the home connection the
// paper's master runs behind; netsim's byte counters report exactly what
// crossed the simulated wire.

// DefaultCompressUplink is the modeled master uplink the fleet shares: a
// commodity 32 Mbit/s link (the shard experiment's DefaultShardUplink),
// narrow enough that payload bytes dominate the per-item cost under the
// plain wire.
const DefaultCompressUplink = int64(4 << 20)

// Compression workloads, in the order their cells run.
const (
	// WorkloadCompressible streams distinct patterned tiles: every
	// payload is unique (dedup never hits) but highly compressible.
	WorkloadCompressible = iota
	// WorkloadRepeated streams one incompressible tile over and over:
	// DEFLATE cannot help, dedup turns every retransmission into a
	// digest reference.
	WorkloadRepeated
	// WorkloadIncompressible streams unique random tiles: neither layer
	// can help, so the cell measures pure adaptive-policy overhead.
	WorkloadIncompressible
)

// CompressWorkloadNames maps the workload constants to report labels.
var CompressWorkloadNames = []string{"compressible", "repeated", "incompressible"}

// CompressProfile is one workload's measured pair: the plain v2 wire
// against the bandwidth-aware v3 wire over the same fleet and stream.
type CompressProfile struct {
	Workload     string
	Workers      int
	Items        int
	PayloadBytes int
	// BaselineItemsPerSec / BaselineWireBytes are the '/pando/2.1.0'
	// cell; WireBytes counts master→worker bytes on the simulated links.
	BaselineItemsPerSec float64
	BaselineWireBytes   int64
	V3ItemsPerSec       float64
	V3WireBytes         int64
	// Speedup is V3 over baseline items/s; BytesSavedFraction is the
	// share of master→worker bytes the v3 wire did not send.
	Speedup            float64
	BytesSavedFraction float64
}

// CompressComparison is the whole experiment, persisted as
// BENCH_compress.json.
type CompressComparison struct {
	Workers           int
	ItemsPerWorker    int
	PayloadBytes      int
	UplinkBytesPerSec int64
	// Codec is the v3 steady-state allocation accounting with
	// compression engaged — the 0 allocs/op gate extended to the new
	// format.
	Codec    []HotpathCodecCost
	Profiles []CompressProfile
}

// xorshiftFill fills b with deterministic pseudo-random bytes — dense
// enough that DEFLATE cannot shrink them, seeded so every cell (and
// every child process) streams identical payloads.
func xorshiftFill(b []byte, seed uint64) {
	s := seed*2654435761 + 0x9E3779B97F4A7C15
	for i := 0; i+8 <= len(b); i += 8 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		binary.LittleEndian.PutUint64(b[i:], s)
	}
	for i := len(b) &^ 7; i < len(b); i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		b[i] = byte(s)
	}
}

// compressPayload builds item i's payload for one workload.
func compressPayload(workload, payload, i int) []byte {
	b := make([]byte, payload)
	switch workload {
	case WorkloadCompressible:
		// Distinct per item (no dedup hit), strongly compressible: a
		// short period pattern phase-shifted by the item index.
		for j := range b {
			b[j] = byte(j*31 + 7 + i*13)
		}
	case WorkloadIncompressible:
		xorshiftFill(b, uint64(i)+1)
	}
	return b
}

// RunCompressProfile runs one cell: `workers` netsim volunteers whose
// pipes share the master's modeled uplink (each paced at uplink/W; 0
// leaves the links unconstrained for smoke tests), a master streaming
// `items` payloads of `payload` bytes under the selected workload,
// replies reduced to a one-byte checksum (the asymmetric
// request/response shape of the paper's volunteer workloads). v3 selects
// the bandwidth-aware wire; otherwise the cell runs the plain binary
// wire. It reports end-to-end items/sec and the master→worker bytes
// that crossed the simulated links. Heartbeats are off; the measurement
// is dispatch + payload transfer.
func RunCompressProfile(workload int, v3 bool, workers, items, payload int, uplink int64) (float64, int64, error) {
	if workload < 0 || workload >= len(CompressWorkloadNames) {
		return 0, 0, fmt.Errorf("bench: unknown compress workload %d", workload)
	}
	cfg := master.Config{
		FuncName: "checksum",
		Batch:    8,
		Ordered:  true,
		Channel:  transport.Config{HeartbeatInterval: -1},
	}
	raw := transport.RawCodec{}
	m := master.New[[]byte, []byte](cfg, raw, raw)
	defer m.Close()

	var perPipe int64
	if uplink > 0 {
		perPipe = uplink / int64(workers)
		if perPipe < 1 {
			perPipe = 1
		}
	}
	link := netsim.Link{Latency: 2 * time.Millisecond, Bandwidth: perPipe}
	checksum := func(b []byte) ([]byte, error) {
		var s byte
		for _, c := range b {
			s += c
		}
		return []byte{s}, nil
	}

	pipes := make([]*netsim.Pipe, 0, workers)
	defer func() {
		for _, p := range pipes {
			p.Cut()
		}
	}()
	for i := 0; i < workers; i++ {
		p := netsim.NewPipe(link)
		pipes = append(pipes, p)
		wch := transport.NewWSock(p.A, cfg.Channel)
		mch := transport.NewWSock(p.B, cfg.Channel)
		var workerCh transport.Channel = wch
		if v3 {
			// What negotiation would set up: a fresh per-channel policy
			// instance on each end, and the worker-side dedup half in
			// front of the serve loop (master-side wrapping happens in
			// Attach when it sees the v3 wire).
			wch.SetWire(proto.NewCompressedWire())
			mch.SetWire(proto.NewCompressedWire())
			workerCh = transport.DedupWorkerChannel(wch, blob.NewCache(0))
		} else {
			wch.SetWire(proto.V2)
			mch.SetWire(proto.V2)
		}
		go func() {
			_ = transport.WorkerServeGrouped[[]byte, []byte](workerCh, raw, raw, checksum)
		}()
		m.Attach(fmt.Sprintf("w%d", i), mch)
	}

	var repeated []byte
	if workload == WorkloadRepeated {
		repeated = make([]byte, payload)
		xorshiftFill(repeated, 42)
	}
	src := pullstream.Take[[]byte](items)(pullstream.Infinite(func(i int) []byte {
		if workload == WorkloadRepeated {
			return repeated
		}
		return compressPayload(workload, payload, i)
	}))

	start := time.Now()
	got := 0
	err := pullstream.Drain(m.Bind(src), func(b []byte) error {
		if len(b) != 1 {
			return fmt.Errorf("bench: result %d is %d bytes, want 1", got, len(b))
		}
		got++
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	if got != items {
		return 0, 0, fmt.Errorf("bench: %d results, want %d", got, items)
	}
	var wireBytes int64
	for _, p := range pipes {
		_, bToA := p.Bytes() // master holds the B endpoints
		wireBytes += bToA
	}
	return float64(items) / elapsed.Seconds(), wireBytes, nil
}

// CompressRunner executes one cell and returns (items/sec, master→worker
// wire bytes). cmd/pando-bench supplies a fresh-process runner;
// RunCompress's settled in-process default serves tests.
type CompressRunner func(workload int, v3 bool, workers, items, payload int, uplink int64) (float64, int64, error)

// CompressReps is how many (baseline, v3) pairs each workload cell runs;
// the median-speedup pair is reported (see HotpathReps for why pairs).
// It defaults to 1: the cells are bandwidth-paced, so their rates are
// timer-determined and vary far less between reps than CPU-bound cells.
var CompressReps = 1

// RunCompress runs the whole experiment in-process.
func RunCompress(workers, itemsPerWorker, payload int, uplink int64) (CompressComparison, error) {
	return RunCompressWith(workers, itemsPerWorker, payload, uplink, settledCompressRun)
}

// RunCompressWith is RunCompress with a pluggable per-cell runner
// (fresh-process isolation preferred; see FreshProcessRun).
func RunCompressWith(workers, itemsPerWorker, payload int, uplink int64, run CompressRunner) (CompressComparison, error) {
	cmp := CompressComparison{
		Workers:           workers,
		ItemsPerWorker:    itemsPerWorker,
		PayloadBytes:      payload,
		UplinkBytesPerSec: uplink,
	}
	// The alloc gate: the v3 codec must hold the pooled hot path's
	// 0 allocs/op steady state with compression engaged (the hotpath
	// payload is compressible, so the DEFLATE path is the one measured).
	cmp.Codec = MeasureHotpathCodec(proto.NewCompressedWire(), payload)

	items := workers * itemsPerWorker
	for wl, name := range CompressWorkloadNames {
		type pair struct {
			base, v3           float64
			baseBytes, v3Bytes int64
		}
		pairs := make([]pair, 0, CompressReps)
		for i := 0; i < CompressReps; i++ {
			base, baseBytes, err := run(wl, false, workers, items, payload, uplink)
			if err != nil {
				return cmp, fmt.Errorf("%s baseline: %w", name, err)
			}
			v3, v3Bytes, err := run(wl, true, workers, items, payload, uplink)
			if err != nil {
				return cmp, fmt.Errorf("%s v3: %w", name, err)
			}
			pairs = append(pairs, pair{base, v3, baseBytes, v3Bytes})
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].v3/pairs[i].base < pairs[j].v3/pairs[j].base
		})
		med := pairs[len(pairs)/2]
		p := CompressProfile{
			Workload:            name,
			Workers:             workers,
			Items:               items,
			PayloadBytes:        payload,
			BaselineItemsPerSec: med.base,
			BaselineWireBytes:   med.baseBytes,
			V3ItemsPerSec:       med.v3,
			V3WireBytes:         med.v3Bytes,
			Speedup:             med.v3 / med.base,
		}
		if med.baseBytes > 0 {
			p.BytesSavedFraction = 1 - float64(med.v3Bytes)/float64(med.baseBytes)
		}
		cmp.Profiles = append(cmp.Profiles, p)
	}
	return cmp, nil
}

func settledCompressRun(workload int, v3 bool, workers, items, payload int, uplink int64) (float64, int64, error) {
	settle()
	return RunCompressProfile(workload, v3, workers, items, payload, uplink)
}

// RenderCompress prints the comparison as a readable table.
func RenderCompress(w io.Writer, cmp CompressComparison) {
	fmt.Fprintf(w, "v3 codec steady state, compression engaged (payload bytes in parentheses):\n")
	for _, c := range cmp.Codec {
		fmt.Fprintf(w, "  %-28s %-5s  %3d allocs/op  %6d B/op  %8d ns/op  (%d)\n",
			c.Format, c.Op, c.AllocsPerOp, c.BytesPerOp, c.NsPerOp, c.PayloadBytes)
	}
	fmt.Fprintf(w, "bandwidth-aware data plane (%d workers, %d B payload, %.1f MB/s modeled uplinks, heartbeats off):\n",
		cmp.Workers, cmp.PayloadBytes, float64(cmp.UplinkBytesPerSec)/(1<<20))
	for _, p := range cmp.Profiles {
		fmt.Fprintf(w, "  %-15s %8d items  v2 %10.0f items/s %9.1f MB  v3 %10.0f items/s %9.1f MB  speedup %.2fx  bytes saved %5.1f%%\n",
			p.Workload, p.Items,
			p.BaselineItemsPerSec, float64(p.BaselineWireBytes)/(1<<20),
			p.V3ItemsPerSec, float64(p.V3WireBytes)/(1<<20),
			p.Speedup, 100*p.BytesSavedFraction)
	}
}
