package bench

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/transport"
)

// DefaultTimeScale compresses the simulation: compute delays and link
// latencies are both multiplied by it, preserving their ratio (which is
// what determines whether batching can hide the latency) while letting a
// full Table 2 run finish in seconds instead of the paper's five minutes
// per cell.
const DefaultTimeScale = 0.01

// Options tunes a harness run.
type Options struct {
	// TimeScale compresses time; zero selects DefaultTimeScale.
	TimeScale float64
	// Items is the number of work items per run; zero selects 400.
	Items int
	// Batch overrides the scenario's batch size when > 0 (for sweeps).
	Batch int
}

func (o Options) timeScale() float64 {
	if o.TimeScale <= 0 {
		return DefaultTimeScale
	}
	return o.TimeScale
}

func (o Options) items() int {
	if o.Items <= 0 {
		return 400
	}
	return o.Items
}

// WorkItem is the simulated work unit flowing through the deployment.
type WorkItem struct {
	Seq int `json:"seq"`
}

// Ack is the simulated result.
type Ack struct {
	Seq int `json:"seq"`
}

// Row is one measured cell of the regenerated Table 2.
type Row struct {
	Device string
	// Measured is the achieved throughput in the app's unit per second,
	// rescaled back to real time.
	Measured float64
	// MeasuredShare is the device's % of the total (the % columns).
	MeasuredShare float64
	// Paper is the rate the paper reports for this device (calibration
	// target).
	Paper float64
	// PaperShare is the paper's % column.
	PaperShare float64
	// Items processed by this device.
	Items int
}

// CellResult is one (scenario, app) cell run: per-device rows plus
// aggregates.
type CellResult struct {
	Scenario string
	App      App
	Rows     []Row
	// TotalMeasured and TotalPaper aggregate the device rates.
	TotalMeasured float64
	TotalPaper    float64
	Elapsed       time.Duration
	Items         int
}

// scaledLink multiplies a link's delays by the time scale.
func scaledLink(l netsim.Link, ts float64) netsim.Link {
	l.Latency = time.Duration(float64(l.Latency) * ts)
	l.Jitter = time.Duration(float64(l.Jitter) * ts)
	return l
}

// perCoreDelay computes the simulated per-item compute time for one core
// of the device.
func perCoreDelay(d Device, app App, ts float64) (time.Duration, bool) {
	rate, ok := d.Rates[app]
	if !ok || rate <= 0 {
		return 0, false
	}
	perCore := rate / float64(d.Cores)
	secs := UnitsPerItem[app] / perCore * ts
	return time.Duration(secs * float64(time.Second)), true
}

var cellSeq int

// RunCell reproduces one (scenario, app) cell of Table 2: it deploys one
// master, attaches every device of the scenario (one volunteer per core,
// with the device's calibrated per-item delay, behind the scenario's
// simulated link), processes the work items, and derives per-device
// throughput from the master's accounting — the same methodology as §5.1.
func RunCell(s Scenario, app App, opt Options) (CellResult, error) {
	ts := opt.timeScale()
	batch := s.Batch
	if opt.Batch > 0 {
		batch = opt.Batch
	}
	cellSeq++
	p := pando.New(
		fmt.Sprintf("bench-%s-%d", app, cellSeq),
		func(w WorkItem) (Ack, error) { return Ack{Seq: w.Seq}, nil },
		pando.WithBatch(batch),
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 50 * time.Millisecond}),
		pando.WithoutRegistry(),
	)
	defer p.Close()

	link := scaledLink(s.Link, ts)
	participating := 0
	for _, d := range s.Devices {
		delay, ok := perCoreDelay(d, app, ts)
		if !ok {
			continue // app not run on this device (ImgProc on WAN)
		}
		participating++
		for c := 0; c < d.Cores; c++ {
			p.AddWorker(d.Name, link, delay, -1)
		}
	}
	if participating == 0 {
		return CellResult{}, fmt.Errorf("bench: no device runs %s in %s", app, s.Name)
	}

	items := opt.items()
	inputs := make([]WorkItem, items)
	for i := range inputs {
		inputs[i] = WorkItem{Seq: i}
	}
	start := time.Now()
	if _, err := p.ProcessSlice(context.Background(), inputs); err != nil {
		return CellResult{}, fmt.Errorf("bench: %s/%s: %w", s.Name, app, err)
	}
	elapsed := time.Since(start)

	res := CellResult{Scenario: s.Name, App: app, Elapsed: elapsed, Items: items}
	stats := p.Stats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	totalItems := 0
	for _, w := range stats {
		totalItems += w.Items
	}
	for _, d := range s.Devices {
		paper := d.Rates[app]
		if paper == 0 {
			continue
		}
		var devItems int
		for _, w := range stats {
			if w.Name == d.Name {
				devItems = w.Items
			}
		}
		// Rescale: measured units/s in simulated time x timeScale gives
		// the calibrated real-time rate.
		measured := float64(devItems) * UnitsPerItem[app] / elapsed.Seconds() * ts
		row := Row{
			Device:     d.Name,
			Measured:   measured,
			Paper:      paper,
			PaperShare: s.Share(d.Name, app),
			Items:      devItems,
		}
		if totalItems > 0 {
			row.MeasuredShare = 100 * float64(devItems) / float64(totalItems)
		}
		res.Rows = append(res.Rows, row)
		res.TotalMeasured += measured
		res.TotalPaper += paper
	}
	return res, nil
}

// RunScenario reproduces one block of Table 2 (all apps on one scenario).
func RunScenario(s Scenario, opt Options) ([]CellResult, error) {
	var out []CellResult
	for _, app := range Apps {
		if s.Total(app) == 0 {
			continue
		}
		cell, err := RunCell(s, app, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, cell)
	}
	return out, nil
}

// RunTable2 reproduces the full Table 2.
func RunTable2(opt Options) ([]CellResult, error) {
	var out []CellResult
	for _, s := range Scenarios {
		cells, err := RunScenario(s, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, cells...)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Cell-isolation scaffolding shared by the fleet-scale experiments
// (-hotpath, -shard, -compress). A fleet measurement leaves tens of
// thousands of dead goroutine stacks and an inflated heap target behind,
// so consecutive cells in one process face different runtimes — a
// sequential comparison then measures process aging as much as the
// system under test. cmd/pando-bench therefore re-executes itself once
// per cell through the child protocol below; the in-process fallback at
// least lets the runtime settle between cells.

// settle lets the previous cell's fleet goroutines exit and pulls the
// heap back toward its baseline before the next in-process measurement.
func settle() {
	runtime.GC()
	time.Sleep(200 * time.Millisecond)
}

// ChildSpec encodes one cell's parameters as the comma-separated integer
// spec a self-exec child flag carries (booleans travel as 0/1).
func ChildSpec(fields ...int64) string {
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = strconv.FormatInt(f, 10)
	}
	return strings.Join(parts, ",")
}

// ParseChildSpec decodes a ChildSpec, enforcing the field count.
func ParseChildSpec(spec string, n int) ([]int64, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("bench: spec %q has %d fields, want %d", spec, len(parts), n)
	}
	out := make([]int64, n)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: bad spec field %q in %q", p, spec)
		}
		out[i] = v
	}
	return out, nil
}

// ChildCell is the child half of the self-exec protocol: run one
// measurement and print its values, space-separated, on one line for the
// parent to parse. Errors exit nonzero so the parent's cmd.Output fails
// loudly instead of yielding a half-parsed rate.
func ChildCell(run func() ([]float64, error)) {
	vals, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pando-bench:", err)
		os.Exit(1)
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'f', -1, 64)
	}
	fmt.Println(strings.Join(parts, " "))
}

// FreshProcessRun is the parent half: re-execute the current binary as
// `exe flagName spec`, parse the space-separated values the child
// prints, and fall back to a settled in-process run when the executable
// path is unavailable.
func FreshProcessRun(flagName, spec string, inProcess func() ([]float64, error)) ([]float64, error) {
	kind := strings.TrimPrefix(flagName, "-")
	exe, err := os.Executable()
	if err != nil {
		settle()
		return inProcess()
	}
	cmd := exec.Command(exe, flagName, spec)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%s child %s: %w", kind, spec, err)
	}
	fields := strings.Fields(string(out))
	if len(fields) == 0 {
		return nil, fmt.Errorf("%s child %s: empty output", kind, spec)
	}
	vals := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("%s child %s: bad output %q", kind, spec, out)
		}
		vals[i] = v
	}
	return vals, nil
}
