package bench

import (
	"fmt"
	"io"
	"time"

	"pando/internal/core"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/sched"
	"pando/internal/transport"
	"pando/internal/verify"
)

// This file measures what Byzantine-tolerant verification costs. The
// worry is obvious: k-replication multiplies every lent value by k, so a
// naive reading says quorum voting divides fleet throughput by the
// replication factor — and the untrusted k=2/k=3 cells confirm it, their
// rates tracking the execution multiple almost exactly. The reputation
// fast-path is the design's answer: workers that accumulate agreement
// graduate to replication-free acceptance, after which each value costs
// one execution again. Warm-up is a fixed per-worker toll (~13 agreed
// votes under the default score dynamics), so recovery is a curve in
// stream length — the longer the stream, the smaller the amortized share
// of replicated warm-up work. The experiment measures that curve
// directly: trusted cells at increasing items-per-worker, each against
// an unreplicated baseline over the same stream, with the longest cell
// as the headline recovery figure.

// VerifyRow is one measured configuration.
type VerifyRow struct {
	Mode    string `json:"mode"` // baseline | k2 | k3 | k2-trusted
	K       int    `json:"k"`
	Quorum  int    `json:"quorum"`
	Workers int    `json:"workers"`
	Items   int    `json:"items"`
	// ItemsPerSec is end-to-end throughput over the whole stream,
	// warm-up included.
	ItemsPerSec float64 `json:"items_per_sec"`
	// FastPathShare is the fraction of accepted results that rode the
	// trusted fast-path (0 for the baseline and the untrusted cells).
	FastPathShare float64 `json:"fast_path_share"`
	// VsBaselinePct is this row's rate as a percentage of the
	// unreplicated baseline over the same stream length.
	VsBaselinePct float64 `json:"vs_baseline_pct"`
}

// VerifyComparison aggregates the experiment for BENCH_verify.json.
type VerifyComparison struct {
	Rows []VerifyRow `json:"rows"`
	// TrustedRecoveryPct is the longest trusted cell's rate as a
	// percentage of its baseline — the acceptance budget: must stay
	// ≥ 80 once warm-up has amortized.
	TrustedRecoveryPct float64 `json:"trusted_recovery_pct"`
}

// RunVerifyProfile streams items identity-mapped []byte payloads through
// a master data plane attached to `workers` simulated sessions and
// reports end-to-end items/sec plus the fraction of results accepted on
// the trusted fast-path. k == 0 disables verification entirely (the
// unreplicated baseline); trust == 0 keeps every result on the quorum
// path; 0 < trust < 1 lets agreeing workers graduate.
//
// Sessions ride the ideal Loopback link for the same reason the hotpath
// cells do: link timers swamp the effect under measurement, and the
// replication overhead being compared does not depend on propagation
// delay.
func RunVerifyProfile(workers, items, payload, k, quorum int, trust float64) (rate, fastShare float64, err error) {
	cfg := transport.Config{HeartbeatInterval: -1}

	d := core.New[[]byte, []byte](core.WithFlow(sched.Policy{Min: 8, Max: 8}))
	defer d.Close()

	var ledger *verify.Ledger
	if k > 0 {
		ledger = d.EnableVerification(core.VerifySpec[[]byte, []byte]{
			Policy: verify.Policy{K: k, Quorum: quorum, TrustThreshold: trust},
			Digest: func(b []byte) (verify.Digest, error) { return verify.DigestOf(b), nil },
		})
	}

	pipes := make([]*netsim.Pipe, 0, workers)
	defer func() {
		for _, p := range pipes {
			p.Cut()
		}
	}()
	raw := transport.RawCodec{}
	identity := func(b []byte) ([]byte, error) { return b, nil }
	for i := 0; i < workers; i++ {
		p := netsim.NewPipe(netsim.Loopback)
		pipes = append(pipes, p)
		wch := transport.NewWSock(p.A, cfg)
		mch := transport.NewWSock(p.B, cfg)
		go func() {
			_ = transport.WorkerServeGrouped[[]byte, []byte](wch, raw, raw, identity)
		}()
		dup := transport.CoalescingMasterDuplex[[]byte, []byte](mch, raw, raw)
		if err := d.Attach(fmt.Sprintf("w%d", i), dup); err != nil {
			return 0, 0, err
		}
	}

	tile := hotpathPayload(payload)
	src := pullstream.Take[[]byte](items)(pullstream.Infinite(func(int) []byte { return tile }))

	start := time.Now()
	got := 0
	err = pullstream.Drain(d.Bind(src), func(b []byte) error {
		if len(b) != payload {
			return fmt.Errorf("bench: result %d is %d bytes, want %d", got, len(b), payload)
		}
		got++
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	if got != items {
		return 0, 0, fmt.Errorf("bench: %d results, want %d", got, items)
	}
	rate = float64(items) / elapsed.Seconds()

	if ledger != nil {
		acc := ledger.Acceptances()
		fast := 0
		for _, a := range acc {
			if a.FastPath {
				fast++
			}
		}
		if len(acc) > 0 {
			fastShare = float64(fast) / float64(len(acc))
		}
	}
	return rate, fastShare, nil
}

// VerifyRunner executes one verification measurement and returns its
// items/sec and fast-path share. cmd/pando-bench supplies a runner that
// re-executes itself so every cell gets a fresh process (a 10k-session
// fleet leaves a heavily aged runtime behind); RunVerify's in-process
// default serves tests.
type VerifyRunner func(workers, items, payload, k, quorum int, trust float64) (float64, float64, error)

// verifyTrust is the fast-path graduation threshold of the trusted
// cells: ~13 agreed votes under the default score dynamics, so warm-up
// costs each worker a fixed handful of replicated values before its
// stream goes replication-free.
const verifyTrust = 0.9

// verifyRepeats runs every cell this many times and keeps the fastest —
// the least-interference estimate. Multi-minute single-process cells are
// at the mercy of host scheduling and GC pacing, and a single unlucky
// run swings a cell by tens of percent; the max is the measurement
// closest to what the configuration actually costs.
const verifyRepeats = 3

// RunVerify runs the whole experiment in-process.
func RunVerify(workers, itemsPerWorker, payload int) (VerifyComparison, error) {
	return RunVerifyWith(workers, itemsPerWorker, payload, settledVerifyRun)
}

// RunVerifyWith is RunVerify with a pluggable per-cell runner: the
// quorum-everywhere k=2 and k=3 overhead cells at the full stream
// length, then the fast-path recovery curve — trusted k=2 at a quarter,
// half and the full length, each paired with an unreplicated baseline
// over the same stream so fixed startup costs cancel.
func RunVerifyWith(workers, itemsPerWorker, payload int, run VerifyRunner) (VerifyComparison, error) {
	var cmp VerifyComparison

	lengths := []int{itemsPerWorker / 4, itemsPerWorker / 2, itemsPerWorker}
	if lengths[0] < 1 {
		lengths[0] = 1
	}
	if lengths[1] < 1 {
		lengths[1] = 1
	}

	measure := func(mode string, n, k, quorum int, trust, base float64) (VerifyRow, error) {
		items := workers * n
		var rate, fastShare float64
		for rep := 0; rep < verifyRepeats; rep++ {
			r, fs, err := run(workers, items, payload, k, quorum, trust)
			if err != nil {
				return VerifyRow{}, fmt.Errorf("%s: %w", mode, err)
			}
			if r > rate {
				rate, fastShare = r, fs
			}
		}
		row := VerifyRow{
			Mode: mode, K: k, Quorum: quorum,
			Workers: workers, Items: items,
			ItemsPerSec: rate, FastPathShare: fastShare,
		}
		if base > 0 {
			row.VsBaselinePct = rate / base * 100
		} else if k == 0 {
			row.VsBaselinePct = 100
		}
		return row, nil
	}

	// Overhead cells: full-length baseline, then quorum-everywhere k=2
	// and k=3 against it.
	full, err := measure("baseline", itemsPerWorker, 0, 0, 0, 0)
	if err != nil {
		return cmp, err
	}
	cmp.Rows = append(cmp.Rows, full)
	for _, c := range []struct {
		mode string
		k    int
	}{{"k2", 2}, {"k3", 3}} {
		row, err := measure(c.mode, itemsPerWorker, c.k, 2, 0, full.ItemsPerSec)
		if err != nil {
			return cmp, err
		}
		cmp.Rows = append(cmp.Rows, row)
	}

	// Recovery curve: trusted k=2 at each stream length vs a same-length
	// baseline. The full-length baseline is already measured.
	for _, n := range lengths {
		base := full
		if n != itemsPerWorker {
			base, err = measure("baseline", n, 0, 0, 0, 0)
			if err != nil {
				return cmp, err
			}
			cmp.Rows = append(cmp.Rows, base)
		}
		row, err := measure("k2-trusted", n, 2, 2, verifyTrust, base.ItemsPerSec)
		if err != nil {
			return cmp, err
		}
		cmp.Rows = append(cmp.Rows, row)
		cmp.TrustedRecoveryPct = row.VsBaselinePct
	}
	return cmp, nil
}

func settledVerifyRun(workers, items, payload, k, quorum int, trust float64) (float64, float64, error) {
	settle()
	return RunVerifyProfile(workers, items, payload, k, quorum, trust)
}

// RenderVerify prints the comparison in the reporter's table style.
func RenderVerify(w io.Writer, cmp VerifyComparison) {
	fmt.Fprintf(w, "\nverification overhead and fast-path recovery (identity map, see BENCH_verify.json):\n")
	fmt.Fprintf(w, "%-12s %3s %6s %8s %9s %12s %10s %12s\n",
		"mode", "k", "quorum", "workers", "items", "items/s", "fast-path", "vs baseline")
	for _, r := range cmp.Rows {
		fmt.Fprintf(w, "%-12s %3d %6d %8d %9d %12.0f %9.0f%% %11.1f%%\n",
			r.Mode, r.K, r.Quorum, r.Workers, r.Items, r.ItemsPerSec, r.FastPathShare*100, r.VsBaselinePct)
	}
	fmt.Fprintf(w, "trusted fast-path recovers %.1f%% of unreplicated throughput at k=2 on the longest stream (budget ≥ 80%%)\n",
		cmp.TrustedRecoveryPct)
}
