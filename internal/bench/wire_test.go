package bench

import (
	"testing"

	"pando/internal/proto"
)

// TestWireBinaryShrinksLargePayloads pins the headline claim of the v2
// format: on []byte-heavy workloads (imgproc tiles) the binary envelope
// removes v1's base64 inflation, cutting bytes-on-wire by roughly a
// quarter on both data planes.
func TestWireBinaryShrinksLargePayloads(t *testing.T) {
	v1, v2, err := CompareWire(ImgprocWirePayloads(16, 128))
	if err != nil {
		t.Fatal(err)
	}
	if v2.FrameBytes >= v1.FrameBytes {
		t.Fatalf("plain plane: v2 %d B >= v1 %d B", v2.FrameBytes, v1.FrameBytes)
	}
	if v2.BatchBytes >= v1.BatchBytes {
		t.Fatalf("grouped plane: v2 %d B >= v1 %d B", v2.BatchBytes, v1.BatchBytes)
	}
	// base64 alone inflates by 4/3; require at least a 20% total cut so
	// envelope overhead cannot silently eat the win.
	if ratio := float64(v2.FrameBytes) / float64(v1.FrameBytes); ratio > 0.8 {
		t.Fatalf("plain plane: v2/v1 = %.2f, want <= 0.80", ratio)
	}
	t.Logf("imgproc 16x128x128: plain v1=%dB v2=%dB, grouped v1=%dB v2=%dB",
		v1.FrameBytes, v2.FrameBytes, v1.BatchBytes, v2.BatchBytes)
}

// TestWireBinaryShrinksSmallItems: even envelope-dominated workloads
// (collatz strings) must not regress, and the grouped plane's binary
// batch must beat the JSON array encoding.
func TestWireBinaryShrinksSmallItems(t *testing.T) {
	v1, v2, err := CompareWire(CollatzWirePayloads(256))
	if err != nil {
		t.Fatal(err)
	}
	if v2.FrameBytes >= v1.FrameBytes {
		t.Fatalf("plain plane: v2 %d B >= v1 %d B", v2.FrameBytes, v1.FrameBytes)
	}
	if v2.BatchBytes >= v1.BatchBytes {
		t.Fatalf("grouped plane: v2 %d B >= v1 %d B", v2.BatchBytes, v1.BatchBytes)
	}
	t.Logf("collatz 256: plain v1=%dB v2=%dB, grouped v1=%dB v2=%dB",
		v1.FrameBytes, v2.FrameBytes, v1.BatchBytes, v2.BatchBytes)
}

// BenchmarkWireCollatz compares encode+decode cost of the two formats on
// the small-item workload.
func BenchmarkWireCollatz(b *testing.B) {
	payloads := CollatzWirePayloads(64)
	for _, wf := range []proto.WireFormat{proto.V1, proto.V2} {
		b.Run(wf.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var last WireCost
			for i := 0; i < b.N; i++ {
				var err error
				last, err = MeasureWire(wf, payloads)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.FrameBytes)/float64(len(payloads.Items)), "wire-B/item")
		})
	}
}

// BenchmarkWireImgproc compares the formats on the large-payload
// workload, where v1 pays JSON marshalling plus base64 for every tile.
func BenchmarkWireImgproc(b *testing.B) {
	payloads := ImgprocWirePayloads(4, 256) // 4 tiles of 64 KiB
	for _, wf := range []proto.WireFormat{proto.V1, proto.V2} {
		b.Run(wf.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var last WireCost
			for i := 0; i < b.N; i++ {
				var err error
				last, err = MeasureWire(wf, payloads)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(last.FrameBytes))
			b.ReportMetric(float64(last.FrameBytes)/float64(len(payloads.Items)), "wire-B/item")
		})
	}
}
