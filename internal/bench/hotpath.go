package bench

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"testing"
	"time"

	"pando/internal/core"
	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/sched"
	"pando/internal/transport"
)

// This file measures the zero-alloc hot path: what the pooled codec
// arena and the coalescing (vectored-write) data plane buy over the
// pre-pooling baseline — per-frame make() in the encoder, a fresh body
// buffer per decode, and one write per frame. The codec half is measured
// with the testing package's allocation accounting; the fleet half runs a
// real master data plane against large simulated fleets, because both
// optimizations only matter at scale: allocation churn is a GC problem
// with thousands of live sessions, and write coalescing only collapses
// work when a credit window keeps several frames in flight per session.

// HotpathCodecCost is the steady-state per-frame cost of one wire format
// direction, from testing.Benchmark with allocation accounting.
type HotpathCodecCost struct {
	Format string
	// Op is "write" (encode one frame to a sink) or "read" (decode one
	// frame and release it back to the arena).
	Op           string
	AllocsPerOp  int64
	BytesPerOp   int64
	NsPerOp      int64
	PayloadBytes int
}

// HotpathProfile is one fleet-scale throughput cell: the same identity
// workload pushed through the baseline data plane (unpooled v2 encode,
// one write per frame) and the pooled coalescing one.
type HotpathProfile struct {
	Workers      int
	Items        int
	PayloadBytes int
	// BaselineItemsPerSec is V2 with per-frame allocation and
	// frame-per-write sends (the pre-pooling data plane).
	BaselineItemsPerSec float64
	// PooledItemsPerSec is pooled V2 with credit-window write
	// coalescing.
	PooledItemsPerSec float64
	Speedup           float64
}

// HotpathComparison is the whole experiment, persisted as
// BENCH_hotpath.json.
type HotpathComparison struct {
	Codec    []HotpathCodecCost
	Profiles []HotpathProfile
}

// hotpathPayload builds the representative frame payload: an opaque tile
// of n bytes, the []byte-shaped workload RawCodec carries verbatim.
func hotpathPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	return p
}

// MeasureHotpathCodec benchmarks one wire format's encode and decode
// paths in isolation, payload of n bytes, reporting allocations per
// steady-state frame. The pooled v2 path must come out at 0 allocs/op in
// both directions; the unpooled variant shows what every frame used to
// cost.
func MeasureHotpathCodec(wf proto.WireFormat, payload int) []HotpathCodecCost {
	data := hotpathPayload(payload)
	m := &proto.Message{Type: proto.TypeInput, Seq: 42, Data: data}

	wres := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := wf.WriteFrame(io.Discard, m); err != nil {
				b.Fatal(err)
			}
		}
	})

	var frame bytes.Buffer
	if err := wf.WriteFrame(&frame, m); err != nil {
		panic(err)
	}
	encoded := frame.Bytes()
	rres := testing.Benchmark(func(b *testing.B) {
		r := bytes.NewReader(encoded)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(encoded)
			got, err := wf.ReadFrame(r)
			if err != nil {
				b.Fatal(err)
			}
			proto.Release(got)
		}
	})

	return []HotpathCodecCost{
		{Format: wf.Name(), Op: "write", AllocsPerOp: wres.AllocsPerOp(),
			BytesPerOp: wres.AllocedBytesPerOp(), NsPerOp: wres.NsPerOp(), PayloadBytes: payload},
		{Format: wf.Name(), Op: "read", AllocsPerOp: rres.AllocsPerOp(),
			BytesPerOp: rres.AllocedBytesPerOp(), NsPerOp: rres.NsPerOp(), PayloadBytes: payload},
	}
}

// RunHotpathProfile streams items identity-mapped []byte payloads
// through a master data plane attached to `workers` simulated sessions,
// and reports end-to-end items/sec. pooled selects the data plane: the
// pooled coalescing one, or the pre-pooling baseline (unpooled v2
// encode, one write per frame). Heartbeats are off so the measurement is
// pure data plane.
//
// Sessions ride the ideal Loopback link: link timers and jitter are
// simulator overhead that swamps the effect under measurement, and the
// data-plane costs being compared (per-frame allocation, GC pressure,
// write amortization) do not depend on propagation delay.
func RunHotpathProfile(workers, items, payload int, pooled bool) (float64, error) {
	cfg := transport.Config{HeartbeatInterval: -1}
	wire := proto.V2
	if !pooled {
		wire = proto.V2Unpooled
	}

	// A static window of 8 values in flight per session (the paper's
	// WAN-style batch, doubled) — the run of frames the coalescing plane
	// turns into one write. The baseline runs the identical policy; it
	// just writes the frames one by one.
	d := core.New[[]byte, []byte](core.WithFlow(sched.Policy{Min: 8, Max: 8}))
	defer d.Close()

	pipes := make([]*netsim.Pipe, 0, workers)
	defer func() {
		for _, p := range pipes {
			p.Cut()
		}
	}()
	raw := transport.RawCodec{}
	for i := 0; i < workers; i++ {
		p := netsim.NewPipe(netsim.Loopback)
		pipes = append(pipes, p)
		wch := transport.NewWSock(p.A, cfg)
		mch := transport.NewWSock(p.B, cfg)
		wch.SetWire(wire)
		mch.SetWire(wire)
		identity := func(b []byte) ([]byte, error) { return b, nil }
		var dup pullstream.Duplex[[]byte, []byte]
		if pooled {
			// The production worker loop: replies leave through the
			// vectored reply queue.
			go func() {
				_ = transport.WorkerServeGrouped[[]byte, []byte](wch, raw, raw, identity)
			}()
			dup = transport.CoalescingMasterDuplex[[]byte, []byte](mch, raw, raw)
		} else {
			// The pre-pooling loop: strictly serial, one write per reply.
			go func() {
				_ = transport.WorkerServe[[]byte, []byte](wch, raw, raw, identity)
			}()
			dup = transport.MasterDuplex[[]byte, []byte](mch, raw, raw)
		}
		if err := d.Attach(fmt.Sprintf("w%d", i), dup); err != nil {
			return 0, err
		}
	}

	tile := hotpathPayload(payload)
	src := pullstream.Take[[]byte](items)(pullstream.Infinite(func(int) []byte { return tile }))

	start := time.Now()
	got := 0
	err := pullstream.Drain(d.Bind(src), func(b []byte) error {
		if len(b) != payload {
			return fmt.Errorf("bench: result %d is %d bytes, want %d", got, len(b), payload)
		}
		got++
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, err
	}
	if got != items {
		return 0, fmt.Errorf("bench: %d results, want %d", got, items)
	}
	return float64(items) / elapsed.Seconds(), nil
}

// HotpathRunner executes one fleet measurement and returns its
// items/sec. cmd/pando-bench supplies a runner that re-executes itself
// so every measurement gets a fresh process; RunHotpath's in-process
// default serves tests and callers that cannot re-exec.
type HotpathRunner func(workers, items, payload int, pooled bool) (float64, error)

// RunHotpath runs the whole experiment in-process: codec allocation
// costs for the pooled and unpooled v2 paths, then fleet-scale
// throughput at each worker count with itemsPerWorker values per
// session.
func RunHotpath(workerCounts []int, itemsPerWorker, payload int) (HotpathComparison, error) {
	return RunHotpathWith(workerCounts, itemsPerWorker, payload, settledHotpathRun)
}

// RunHotpathWith is RunHotpath with a pluggable per-measurement runner.
// Prefer a runner that isolates each measurement in a fresh process:
// a fleet leaves tens of thousands of dead goroutine stacks and an
// inflated heap target behind, so within one process later runs face a
// different runtime than earlier ones — the sequential comparison then
// measures process aging as much as the data planes.
func RunHotpathWith(workerCounts []int, itemsPerWorker, payload int, run HotpathRunner) (HotpathComparison, error) {
	var cmp HotpathComparison
	cmp.Codec = append(cmp.Codec, MeasureHotpathCodec(proto.V2, payload)...)
	cmp.Codec = append(cmp.Codec, MeasureHotpathCodec(proto.V2Unpooled, payload)...)

	// Each cell runs HotpathReps back-to-back (baseline, pooled) pairs
	// and reports the pair with the median speedup. Pairing matters: on
	// a shared machine the phase (load, frequency) swings absolute rates
	// far more than the effect being measured — but it swings both
	// halves of an adjacent pair together, so the within-pair ratio is
	// stable where lone rates are not.
	for _, workers := range workerCounts {
		items := workers * itemsPerWorker
		cell, err := measureHotpathCell(workers, items, payload, run)
		if err != nil {
			return cmp, fmt.Errorf("%d workers: %w", workers, err)
		}
		cmp.Profiles = append(cmp.Profiles, cell)
	}
	return cmp, nil
}

// HotpathReps is how many (baseline, pooled) pairs each throughput cell
// runs; the median-speedup pair is reported. Exposed as a variable so
// quick exploratory runs (-hotpath-reps 1) can trade confidence for
// turnaround.
var HotpathReps = 3

func measureHotpathCell(workers, items, payload int, run HotpathRunner) (HotpathProfile, error) {
	type pair struct{ base, pooled float64 }
	pairs := make([]pair, 0, HotpathReps)
	for i := 0; i < HotpathReps; i++ {
		base, err := run(workers, items, payload, false)
		if err != nil {
			return HotpathProfile{}, fmt.Errorf("baseline: %w", err)
		}
		pooled, err := run(workers, items, payload, true)
		if err != nil {
			return HotpathProfile{}, fmt.Errorf("pooled: %w", err)
		}
		pairs = append(pairs, pair{base, pooled})
	}
	sort.Slice(pairs, func(i, j int) bool {
		return pairs[i].pooled/pairs[i].base < pairs[j].pooled/pairs[j].base
	})
	med := pairs[len(pairs)/2]
	return HotpathProfile{
		Workers:             workers,
		Items:               items,
		PayloadBytes:        payload,
		BaselineItemsPerSec: med.base,
		PooledItemsPerSec:   med.pooled,
		Speedup:             med.pooled / med.base,
	}, nil
}

func settledHotpathRun(workers, items, payload int, pooled bool) (float64, error) {
	settle()
	return RunHotpathProfile(workers, items, payload, pooled)
}

// RenderHotpath prints the comparison as a readable table.
func RenderHotpath(w io.Writer, cmp HotpathComparison) {
	fmt.Fprintf(w, "codec steady state (payload bytes in parentheses):\n")
	for _, c := range cmp.Codec {
		fmt.Fprintf(w, "  %-28s %-5s  %3d allocs/op  %6d B/op  %8d ns/op  (%d)\n",
			c.Format, c.Op, c.AllocsPerOp, c.BytesPerOp, c.NsPerOp, c.PayloadBytes)
	}
	fmt.Fprintf(w, "fleet throughput (identity map, heartbeats off):\n")
	for _, p := range cmp.Profiles {
		fmt.Fprintf(w, "  %6d workers  %8d items  baseline %10.0f items/s  pooled %10.0f items/s  speedup %.2fx\n",
			p.Workers, p.Items, p.BaselineItemsPerSec, p.PooledItemsPerSec, p.Speedup)
	}
}
