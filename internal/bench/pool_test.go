package bench

import "testing"

func TestPoolComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmp, err := RunPoolComparison(160)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(cmp.Rows))
	}
	for _, r := range cmp.Rows {
		if r.Throughput <= 0 {
			t.Errorf("row %s measured no throughput", r.Name)
		}
	}
	// The acceptance budget: sharing one fleet between two equally-loaded
	// jobs must keep aggregate throughput within 15% of two dedicated
	// masters over a split fleet. The bound is asserted with CI slack
	// (80%) — BENCH_pool.json records the precise figure (~98%).
	if cmp.SharedVsDedicatedPct < 80 {
		t.Errorf("shared fleet at %.1f%% of dedicated throughput; budget is ≥ 85%% (80%% with CI slack)",
			cmp.SharedVsDedicatedPct)
	}
	// The payoff: on staggered jobs the short job's devices must re-lease
	// to the long job instead of idling, beating the split fleet.
	if cmp.StaggeredGainPct < 10 {
		t.Errorf("staggered shared-fleet gain %.1f%%; re-leasing should beat a split fleet by ≥ 10%%",
			cmp.StaggeredGainPct)
	}
}
