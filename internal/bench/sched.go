package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/transport"
)

// This file implements the flow-control experiment behind the scheduler
// subsystem: the paper's evaluation (§5.2–5.4) picks a single static
// batch size per deployment, which a heterogeneous volunteer fleet cannot
// share. The experiment measures static vs adaptive per-worker credit
// windows on homogeneous and heterogeneous simulated fleets, and the
// effect of speculative re-dispatch on tail completion time when one
// worker stalls without crashing.

// SchedRow is one measured configuration.
type SchedRow struct {
	Name       string  `json:"name"`
	Fleet      string  `json:"fleet"`
	Policy     string  `json:"policy"`
	Items      int     `json:"items"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Throughput float64 `json:"items_per_sec"`
	// PeakWindow is the largest per-worker credit window observed.
	PeakWindow int `json:"peak_window"`
	// Speculated counts values duplicated away from stragglers.
	Speculated int `json:"speculated"`
}

// SchedComparison aggregates the experiment for BENCH_sched.json.
type SchedComparison struct {
	Rows []SchedRow `json:"rows"`
	// AdaptiveSpeedupHomogeneous / Heterogeneous are adaptive over static
	// end-to-end throughput ratios on the respective fleets.
	AdaptiveSpeedupHomogeneous   float64 `json:"adaptive_speedup_homogeneous"`
	AdaptiveSpeedupHeterogeneous float64 `json:"adaptive_speedup_heterogeneous"`
	// SpeculationTailSpeedup is completion time without speculation over
	// completion time with it, on a fleet with one stalled worker.
	SpeculationTailSpeedup float64 `json:"speculation_tail_speedup"`
}

// schedFleet describes the simulated workers of one row.
type schedFleet struct {
	label     string
	fast      int // workers with fastDelay per item
	slow      int // workers with slowDelay per item
	stalled   int // workers with stallDelay per item (alive, crawling)
	fastDelay time.Duration
	slowDelay time.Duration
	stall     time.Duration
}

var schedSeq int

// runSchedRow deploys one configuration and measures end-to-end
// completion, sampling the master's stats during the run to capture the
// peak credit window and speculation counts before workers detach.
func runSchedRow(name string, fleet schedFleet, policy string, items int, link netsim.Link, opts ...pando.Option) (SchedRow, error) {
	schedSeq++
	base := []pando.Option{
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 50 * time.Millisecond}),
		pando.WithoutRegistry(),
	}
	p := pando.New(
		fmt.Sprintf("sched-%d", schedSeq),
		func(w WorkItem) (Ack, error) { return Ack{Seq: w.Seq}, nil },
		append(base, opts...)...,
	)
	defer p.Close()
	for i := 0; i < fleet.fast; i++ {
		p.AddWorker(fmt.Sprintf("fast-%d", i+1), link, fleet.fastDelay, -1)
	}
	for i := 0; i < fleet.slow; i++ {
		p.AddWorker(fmt.Sprintf("slow-%d", i+1), link, fleet.slowDelay, -1)
	}
	for i := 0; i < fleet.stalled; i++ {
		p.AddWorker(fmt.Sprintf("stalled-%d", i+1), link, fleet.stall, -1)
	}

	// Sample flow-control state while the run is live: controllers detach
	// with their workers, so the peak window and speculation counts must
	// be captured in flight.
	var mu sync.Mutex
	peakWindow, speculated := 0, 0
	stopSampler := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-t.C:
			}
			spec := 0
			mu.Lock()
			for _, w := range p.Stats() {
				if w.Credits > peakWindow {
					peakWindow = w.Credits
				}
				spec += w.Speculated
			}
			if spec > speculated {
				speculated = spec
			}
			mu.Unlock()
		}
	}()

	inputs := make([]WorkItem, items)
	for i := range inputs {
		inputs[i] = WorkItem{Seq: i}
	}
	start := time.Now()
	_, err := p.ProcessSlice(context.Background(), inputs)
	elapsed := time.Since(start)
	close(stopSampler)
	samplerDone.Wait()
	if err != nil {
		return SchedRow{}, fmt.Errorf("bench: sched %s: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	return SchedRow{
		Name:       name,
		Fleet:      fleet.label,
		Policy:     policy,
		Items:      items,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		Throughput: float64(items) / elapsed.Seconds(),
		PeakWindow: peakWindow,
		Speculated: speculated,
	}, nil
}

// RunSchedComparison measures the full static-vs-adaptive and
// speculation-on/off grid. items sizes the throughput rows; stallItems
// (smaller) sizes the straggler rows, whose no-speculation baseline is
// bounded by the stalled worker's crawl.
func RunSchedComparison(items, stallItems int) (SchedComparison, error) {
	// A WAN-grade link: at 10ms one-way, a 1ms/item worker needs ~20
	// values in flight to hide the round-trip — far beyond the static
	// default of 2, which is what the adaptive window must discover.
	link := netsim.Link{Latency: 10 * time.Millisecond, Jitter: time.Millisecond, Bandwidth: 8 << 20}

	homogeneous := schedFleet{label: "8 fast", fast: 8, fastDelay: time.Millisecond}
	heterogeneous := schedFleet{
		label: "4 fast + 4 slow",
		fast:  4, fastDelay: time.Millisecond,
		slow: 4, slowDelay: 25 * time.Millisecond,
	}
	straggler := schedFleet{
		label: "7 fast + 1 stalled",
		fast:  7, fastDelay: time.Millisecond,
		stalled: 1, stall: 1500 * time.Millisecond,
	}

	var cmp SchedComparison
	add := func(name string, fleet schedFleet, policy string, n int, opts ...pando.Option) (SchedRow, error) {
		row, err := runSchedRow(name, fleet, policy, n, link, opts...)
		if err != nil {
			return row, err
		}
		cmp.Rows = append(cmp.Rows, row)
		return row, nil
	}

	staticHomo, err := add("static-homogeneous", homogeneous, "static batch=2", items, pando.WithStaticLimit(2))
	if err != nil {
		return cmp, err
	}
	adaptHomo, err := add("adaptive-homogeneous", homogeneous, "adaptive 1..16", items, pando.WithAdaptiveLimit(1, 16))
	if err != nil {
		return cmp, err
	}
	staticHet, err := add("static-heterogeneous", heterogeneous, "static batch=2", items, pando.WithStaticLimit(2))
	if err != nil {
		return cmp, err
	}
	adaptHet, err := add("adaptive-heterogeneous", heterogeneous, "adaptive 1..16", items, pando.WithAdaptiveLimit(1, 16))
	if err != nil {
		return cmp, err
	}
	noSpec, err := add("straggler-no-speculation", straggler, "static batch=2, speculation off", stallItems, pando.WithStaticLimit(2))
	if err != nil {
		return cmp, err
	}
	withSpec, err := add("straggler-speculation", straggler, "static batch=2, speculation 3.0", stallItems,
		pando.WithStaticLimit(2), pando.WithSpeculation(3.0))
	if err != nil {
		return cmp, err
	}

	cmp.AdaptiveSpeedupHomogeneous = adaptHomo.Throughput / staticHomo.Throughput
	cmp.AdaptiveSpeedupHeterogeneous = adaptHet.Throughput / staticHet.Throughput
	cmp.SpeculationTailSpeedup = noSpec.ElapsedMS / withSpec.ElapsedMS
	return cmp, nil
}

// RenderSched prints the comparison in the reporter's table style.
func RenderSched(w io.Writer, cmp SchedComparison) {
	fmt.Fprintf(w, "\nFlow control: static pull-limit vs adaptive credits (see BENCH_sched.json)\n")
	fmt.Fprintf(w, "%-26s %-20s %-32s %8s %10s %6s %6s\n",
		"row", "fleet", "policy", "items/s", "elapsed", "peakW", "spec")
	for _, r := range cmp.Rows {
		fmt.Fprintf(w, "%-26s %-20s %-32s %8.1f %9.0fms %6d %6d\n",
			r.Name, r.Fleet, r.Policy, r.Throughput, r.ElapsedMS, r.PeakWindow, r.Speculated)
	}
	fmt.Fprintf(w, "adaptive/static speedup: homogeneous %.2fx, heterogeneous %.2fx\n",
		cmp.AdaptiveSpeedupHomogeneous, cmp.AdaptiveSpeedupHeterogeneous)
	fmt.Fprintf(w, "speculation tail speedup with one stalled worker: %.2fx\n",
		cmp.SpeculationTailSpeedup)
}
