package chaos

// Byzantine fault builders: handler wrappers that return WRONG results
// instead of crashing. Crash-stop faults (faults.go) are what the
// paper's §2.3 model tolerates by construction; these are what it does
// not — a volunteer that computes quickly and lies. Only the
// verification layer (quorum voting on result digests, spot-checks,
// reputation) stands between a Byzantine handler and the output, which
// is exactly what the Byzantine chaos tier pins.
//
// Every wrapper is deterministic given its seed and inputs, so a chaos
// seed fully reproduces which values were answered wrongly and with
// what bytes. The fabricated payloads are well-formed JSON numbers:
// they decode cleanly, carry a valid transport digest (the cheater
// hashes its own lie), and are indistinguishable from honest results
// until an independent replica disagrees — the strongest adversary the
// voting layer faces from inside the data plane.

import (
	"fmt"
	"strconv"

	"pando/internal/verify"
	"pando/internal/worker"
)

// wrongBytes fabricates a plausible, well-formed JSON number from the
// input payload and a key: deterministic (same input, same lie — a
// re-lent value is answered identically), never empty, and chosen so
// distinct keys virtually never produce colliding lies.
//
//pando:deterministic
func wrongBytes(key int64, input []byte) []byte {
	h := uint64(14695981039346656037) ^ uint64(key)
	for i := 0; i < len(input); i++ {
		h ^= uint64(input[i])
		h *= 1099511628211
	}
	// Bias away from small honest answers; keep it positive and short.
	return strconv.AppendUint(nil, h%1_000_000_000+666, 10)
}

// WrongResult wraps h so that each call lies with probability rate
// (drawn from r): the fabricated answer replaces the honest one, keyed
// by the input so replays of a seed lie on the same draws. The
// intermittent cheat is the hardest reputation case — it earns real
// agreement between lies, so its score must fall on evidence, not on a
// single verdict.
func WrongResult(r *Rand, h worker.Handler, rate float64) worker.Handler {
	return func(input []byte) ([]byte, error) {
		out, err := h(input)
		if err != nil {
			return nil, err
		}
		if r.Bool(rate) {
			return wrongBytes(0x57524F4E, input), nil // "WRON"
		}
		return out, nil
	}
}

// LazyEcho is the freeloader: it never computes, echoing the input
// payload back as the "result". Fast, consistent, and wrong on every
// value whose honest result differs from its input — the classic
// credit-farming volunteer of the BOINC era.
func LazyEcho() worker.Handler {
	//pando:deterministic
	return func(input []byte) ([]byte, error) {
		out := make([]byte, len(input))
		copy(out, input)
		return out, nil
	}
}

// Colluder builds a member of a colluding group: every member wrapping
// any handler with the same group key fabricates byte-identical wrong
// answers for the same input. A group of size quorum-1 is the strongest
// coalition quorum voting provably defeats; the Byzantine tier runs
// exactly that.
func Colluder(group int64, h worker.Handler) worker.Handler {
	_ = h // the coalition never bothers computing honestly
	//pando:deterministic
	return func(input []byte) ([]byte, error) {
		return wrongBytes(group, input), nil
	}
}

// CheckVerified asserts that no unverified value reached the output:
// the acceptance audit must hold exactly one record per index 0..n-1,
// and every record must be sealed by a quorum of distinct workers, the
// trusted fast path, or a spot-check recomputation. An index missing
// from the audit means a result was emitted without passing through the
// voting layer at all.
func CheckVerified(acc []verify.Acceptance, n, quorum int) error {
	seen := make(map[int]bool, n)
	for _, a := range acc {
		if a.Idx < 0 || a.Idx >= n {
			return fmt.Errorf("chaos: acceptance for index %d, outside 0..%d", a.Idx, n-1)
		}
		if seen[a.Idx] {
			return fmt.Errorf("chaos: index %d accepted twice (vote finalized twice)", a.Idx)
		}
		seen[a.Idx] = true
		switch {
		case a.Votes >= quorum:
		case a.FastPath:
		case a.SpotChecked && !a.SpotFailed:
		case a.SpotChecked: // spot-check overrode the vote: the recomputed truth was emitted
		default:
			return fmt.Errorf("chaos: index %d emitted with %d votes (quorum %d), no fast path, no spot-check — unverified value reached the output", a.Idx, a.Votes, quorum)
		}
	}
	if len(seen) != n {
		for i := 0; i < n; i++ {
			if !seen[i] {
				return fmt.Errorf("chaos: index %d missing from the acceptance audit (emitted without verification)", i)
			}
		}
	}
	return nil
}
