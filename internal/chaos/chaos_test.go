package chaos

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pando/internal/fleet"
	"pando/internal/journal"
)

// TestRandDeterminism: the same seed yields the same draws, and Fork
// streams depend only on (seed, label) — not on parent draw order.
func TestRandDeterminism(t *testing.T) {
	draws := func(r *Rand) []int64 {
		out := make([]int64, 8)
		for i := range out {
			out[i] = r.Int63()
		}
		return out
	}
	if !reflect.DeepEqual(draws(New(42)), draws(New(42))) {
		t.Fatal("same seed produced different streams")
	}
	if reflect.DeepEqual(draws(New(42)), draws(New(43))) {
		t.Fatal("different seeds produced identical streams")
	}

	// Fork independence from parent draw order.
	a := New(7)
	forkA := a.Fork("workers")
	b := New(7)
	b.Int63() // parent draw before forking...
	forkB := b.Fork("workers")
	if !reflect.DeepEqual(draws(forkA), draws(forkB)) {
		t.Fatal("fork stream shifted with parent draw count")
	}
	if reflect.DeepEqual(draws(New(7).Fork("workers")), draws(New(7).Fork("faults"))) {
		t.Fatal("different labels produced identical fork streams")
	}
}

// TestRandHelpers: bounds of the convenience draws.
func TestRandHelpers(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if d := r.Duration(10*time.Millisecond, 20*time.Millisecond); d < 10*time.Millisecond || d >= 20*time.Millisecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if d := r.Duration(5*time.Millisecond, 5*time.Millisecond); d != 5*time.Millisecond {
		t.Fatalf("degenerate Duration = %v", d)
	}
	if got := len(r.Perm(5)); got != 5 {
		t.Fatalf("Perm length %d", got)
	}
}

// TestScheduleDeterministicDescription: two schedules built from the same
// seed describe identically, regardless of Add order for distinct
// offsets.
func TestScheduleDeterministicDescription(t *testing.T) {
	build := func(seed int64) []string {
		r := New(seed)
		s := &Schedule{}
		// Added out of order on purpose; Describe sorts by offset.
		s.Add(30*time.Millisecond, "late", func() {})
		s.Add(r.Duration(0, 10*time.Millisecond), "early", func() {})
		return s.Describe()
	}
	if !reflect.DeepEqual(build(9), build(9)) {
		t.Fatal("same seed produced different schedules")
	}
	lines := build(9)
	if !strings.Contains(lines[0], "early") || !strings.Contains(lines[1], "late") {
		t.Fatalf("Describe not sorted by offset: %v", lines)
	}
}

// TestDescribeDeterministic: a full scenario built through the fault
// builders from one seed describes byte-identically across two
// independent builds — the property the detrand analyzer enforces
// statically on the schedule-construction path. Each injector draws from
// its own fork, so the comparison also pins the fork-isolation contract
// (one builder's draw count must not shift another's timings).
func TestDescribeDeterministic(t *testing.T) {
	build := func(seed int64) string {
		r := New(seed)
		s := &Schedule{}
		var p Pauser = pauseRecorder{}
		Flap(s, r.Fork("flap-a"), "link-a", p, 3, 5*time.Millisecond, 40*time.Millisecond, time.Millisecond, 20*time.Millisecond)
		Flap(s, r.Fork("flap-b"), "link-b", p, 2, 0, 25*time.Millisecond, time.Millisecond, 10*time.Millisecond)
		Cut(s, "link-b", cutRecorder{}, 60*time.Millisecond)
		return strings.Join(s.Describe(), "\n")
	}
	first, second := build(42), build(42)
	if first != second {
		t.Fatalf("same seed described differently:\n--- first\n%s\n--- second\n%s", first, second)
	}
	if other := build(43); other == first {
		t.Fatal("different seeds described identically; the builders are not drawing from the Rand")
	}
}

type pauseRecorder struct{}

func (pauseRecorder) Pause()  {}
func (pauseRecorder) Resume() {}

type cutRecorder struct{}

func (cutRecorder) Cut() {}

// TestSchedulePlayFiresInOrder: events fire by offset order and the
// fired log records them.
func TestSchedulePlayFiresInOrder(t *testing.T) {
	s := &Schedule{}
	var order []string
	s.Add(20*time.Millisecond, "second", func() { order = append(order, "second") })
	s.Add(1*time.Millisecond, "first", func() { order = append(order, "first") })
	stop := make(chan struct{})
	s.Play(stop) // synchronous: returns when all fired
	if !reflect.DeepEqual(order, []string{"first", "second"}) {
		t.Fatalf("fired order %v", order)
	}
	if !reflect.DeepEqual(s.Fired(), []string{"first", "second"}) {
		t.Fatalf("Fired() = %v", s.Fired())
	}
}

// TestSchedulePlayStops: closing stop abandons the remaining events.
func TestSchedulePlayStops(t *testing.T) {
	s := &Schedule{}
	var fired atomic.Int32
	s.Add(time.Millisecond, "a", func() { fired.Add(1) })
	s.Add(10*time.Second, "never", func() { fired.Add(1) })
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { s.Play(stop); close(done) }()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Play did not return after stop")
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("fired %d events, want 1", got)
	}
}

// TestScrambleDeterministic: the same forked seed yields the same
// drop/corrupt decisions chunk for chunk.
func TestScrambleDeterministic(t *testing.T) {
	run := func() []string {
		f := Scramble(New(3).Fork("scramble:w1"), 0.3, 0.2)
		var log []string
		for i := 0; i < 50; i++ {
			data := []byte{byte(i), byte(i + 1), byte(i + 2)}
			out, ok := f(data)
			log = append(log, fmt.Sprintf("%v %v", out, ok))
		}
		return log
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("scramble decisions not reproducible from the seed")
	}
}

// TestCheckExact catches each violation class.
func TestCheckExact(t *testing.T) {
	want := func(i int) int { return i * i }
	if err := CheckExact([]int{0, 1, 4, 9}, 4, want); err != nil {
		t.Fatalf("clean sequence rejected: %v", err)
	}
	if err := CheckExact([]int{0, 1, 4}, 4, want); err == nil {
		t.Fatal("missing output accepted")
	}
	if err := CheckExact([]int{0, 1, 1, 4}, 4, want); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := CheckExact([]int{0, 4, 1, 9}, 4, want); err == nil {
		t.Fatal("misorder accepted")
	}
}

// TestStaleLeases flags only leases held by closed jobs.
func TestStaleLeases(t *testing.T) {
	workers := []fleet.WorkerInfo{
		{Name: "w1", Job: "open-job", State: "leased"},
		{Name: "w2", Job: "closed-job", State: "leased"},
		{Name: "w3", Job: "closed-job", State: "reclaiming"},
		{Name: "w4", Job: "", State: "parked"},
		{Name: "w5", Job: "closed-job", State: "dismissing"},
	}
	open := func(job string) bool { return job == "open-job" }
	stale := StaleLeases(workers, open)
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want exactly w2 and w3", stale)
	}
	for _, s := range stale {
		if !strings.Contains(s, "closed-job") {
			t.Fatalf("unexpected stale entry %q", s)
		}
	}
}

// TestVerifyJournal: byte identity holds for a clean journal and fails on
// a count mismatch or payload divergence.
func TestVerifyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := journal.Open(path, journal.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := func(i int) []byte { return []byte(fmt.Sprintf("r%d", i)) }
	for i := 0; i < 5; i++ {
		if err := j.Record(i, want(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyJournal(path, 5, want); err != nil {
		t.Fatalf("clean journal rejected: %v", err)
	}
	if err := VerifyJournal(path, 6, want); err == nil {
		t.Fatal("short journal accepted")
	}
	if err := VerifyJournal(path, 5, func(i int) []byte { return []byte("x") }); err == nil {
		t.Fatal("diverging payloads accepted")
	}
}

// blockUntil is a helper whose frame lives in this module, so a goroutine
// parked in it counts as a Pando goroutine for the leak guard.
func blockUntil(ch chan struct{}) { <-ch }

// TestLeakGuard: a goroutine leaked after the baseline is reported, and
// the guard settles once it exits.
func TestLeakGuard(t *testing.T) {
	g := Guard()
	release := make(chan struct{})
	go blockUntil(release)
	time.Sleep(10 * time.Millisecond)
	if err := g.Check(50 * time.Millisecond); err == nil {
		t.Fatal("leaked goroutine not detected")
	} else if !strings.Contains(err.Error(), "blockUntil") {
		t.Fatalf("leak report does not name the culprit: %v", err)
	}
	close(release)
	if err := g.Check(2 * time.Second); err != nil {
		t.Fatalf("guard still failing after the leak exited: %v", err)
	}
}
