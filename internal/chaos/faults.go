package chaos

import (
	"fmt"
	"time"

	"pando/internal/netsim"
)

// The fault builders below append deterministic events to a Schedule.
// Each takes its own (forked) Rand so one injector's draw count never
// shifts another's timings. They compose freely: a scenario is just the
// union of whatever the seed selected.

// Pauser freezes and thaws a link (netsim.Pipe satisfies it).
type Pauser interface {
	Pause()
	Resume()
}

// Cutter severs a link for good (netsim.Pipe satisfies it).
type Cutter interface {
	Cut()
}

// Cut schedules a hard, permanent cut of c at the given offset — the
// paper's crash-stop failure, on demand.
func Cut(s *Schedule, name string, c Cutter, at time.Duration) {
	s.Add(at, fmt.Sprintf("cut %s", name), c.Cut)
}

// Flap schedules n pause/resume cycles of p, starting in [from,
// from+over) with holds in [minHold, maxHold). Holds shorter than the
// heartbeat timeout exercise the partial-synchrony rule (a stall is not a
// crash); longer ones force a false-positive crash verdict followed by
// recovery — both must preserve the output invariants.
func Flap(s *Schedule, r *Rand, name string, p Pauser, n int, from, over, minHold, maxHold time.Duration) {
	for i := 0; i < n; i++ {
		at := from + r.Duration(0, over)
		hold := r.Duration(minHold, maxHold)
		s.Add(at, fmt.Sprintf("pause %s (%s)", name, hold.Round(time.Millisecond)), p.Pause)
		s.Add(at+hold, fmt.Sprintf("resume %s", name), p.Resume)
	}
}

// Partition pauses a whole group of links at once and heals them together
// after hold — the netsplit case, as opposed to per-link flaps.
func Partition(s *Schedule, name string, pipes []*netsim.Pipe, at, hold time.Duration) {
	group := append([]*netsim.Pipe(nil), pipes...)
	s.Add(at, fmt.Sprintf("partition %s (%d links, %s)", name, len(group), hold.Round(time.Millisecond)), func() {
		for _, p := range group {
			p.Pause()
		}
	})
	s.Add(at+hold, fmt.Sprintf("heal %s", name), func() {
		for _, p := range group {
			p.Resume()
		}
	})
}

// Degrade schedules asymmetric extra latency on one direction of p for
// the window [at, at+hold), then heals it.
func Degrade(s *Schedule, name string, p *netsim.Pipe, aToB bool, extra, at, hold time.Duration) {
	dir := "a→b"
	if !aToB {
		dir = "b→a"
	}
	s.Add(at, fmt.Sprintf("degrade %s %s (+%s)", name, dir, extra.Round(time.Millisecond)), func() {
		p.Degrade(aToB, extra)
	})
	s.Add(at+hold, fmt.Sprintf("heal-degrade %s", name), func() {
		p.Degrade(aToB, 0)
	})
}

// BlobPoisoner corrupts one entry of a content-addressed payload cache
// (worker.Volunteer satisfies it).
type BlobPoisoner interface {
	PoisonBlobCache() bool
}

// Poison schedules a blob-cache poisoning of b at the given offset: a
// byte of the newest cached payload flips, so the next digest-only
// reference resolving to that entry must surface blob.ErrDigestMismatch
// and crash-stop the channel — corrupt bytes must never reach the
// processing function. Firing against a still-empty cache is a no-op;
// the scenario's invariants hold either way.
func Poison(s *Schedule, name string, b BlobPoisoner, at time.Duration) {
	s.Add(at, fmt.Sprintf("poison blob cache of %s", name), func() { b.PoisonBlobCache() })
}

// Scramble returns a FaultFunc that corrupts a chunk with probability
// pCorrupt and drops it with probability pDrop, drawing from r. On the
// reliable stream transport either is connection-lethal: the receiver's
// framing fails and the stack must treat the peer as crashed.
func Scramble(r *Rand, pCorrupt, pDrop float64) netsim.FaultFunc {
	return func(data []byte) ([]byte, bool) {
		roll := r.Float64()
		if roll < pDrop {
			return nil, false
		}
		if roll < pDrop+pCorrupt && len(data) > 0 {
			out := append([]byte(nil), data...)
			out[r.Intn(len(out))] ^= 1 << uint(r.Intn(8))
			return out, true
		}
		return data, true
	}
}

// Corrupt schedules the installation of a Scramble fault on one direction
// of p at the given offset. From that point the link loses and flips
// bytes until the connection dies — modelling a NIC or path gone bad.
func Corrupt(s *Schedule, r *Rand, name string, p *netsim.Pipe, aToB bool, at time.Duration) {
	f := Scramble(r.Fork("scramble:"+name), 0.3, 0.2)
	s.Add(at, fmt.Sprintf("corrupt %s", name), func() { p.Inject(aToB, f) })
}
