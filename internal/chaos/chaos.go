// Package chaos is the deterministic fault-injection harness behind the
// whole-stack chaos tests: every scenario — how many workers, which
// links, which faults fire when and against whom — is derived from a
// single int64 seed, so any failure a randomized CI run finds reproduces
// exactly with `-chaos.seed=N`.
//
// The paper's correctness claim (§2.3, §4) is that Pando preserves
// exactly-once, in-order output under crash-stop volunteer failures.
// Volunteer-computing deployments at BOINC scale (Anderson & Fedak) see
// churn, partitions and stragglers arrive combined, not one at a time;
// this package manufactures those combinations by the thousand instead of
// the handful a hand-written scenario suite covers.
//
// The harness has three parts:
//
//   - Rand: a lock-protected seeded generator that Forks into independent
//     deterministic sub-streams by label, so one decision domain (worker
//     speeds, fault times, kill points) never perturbs another's draws.
//   - Schedule: a list of named fault actions at fixed offsets from
//     scenario start, built deterministically from a Rand and executed
//     against tightly-bounded real time. The schedule — not the exact
//     wall-clock interleaving — is what a seed pins down.
//   - Invariants: checkers for the properties every run must preserve —
//     exactly-once in-order output, no leaked goroutines (which covers
//     simulated sockets: every live pipe owns relay goroutines), no stale
//     fleet leases, and journal-resume byte identity.
package chaos

import (
	"math/rand"
	"sync"
	"time"
)

// Rand is a seeded, lock-protected random source. All scenario decisions
// must flow through one (or a Fork of one) so a seed fully determines the
// scenario.
type Rand struct {
	seed int64
	mu   sync.Mutex
	r    *rand.Rand
}

// New creates a generator from seed.
func New(seed int64) *Rand {
	return &Rand{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed this generator was created with.
func (r *Rand) Seed() int64 { return r.seed }

// Fork derives an independent generator for one labelled decision domain.
// The child's stream depends only on the parent's seed and the label —
// not on how many draws the parent has made — so adding draws to one
// domain never shifts another's schedule.
func (r *Rand) Fork(label string) *Rand {
	return New(r.seed ^ fnv64(label))
}

// fnv64 hashes a label into the non-negative int64 range (FNV-1a).
func fnv64(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h &^ (1 << 63))
}

// Intn draws a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Intn(n)
}

// Int63 draws a non-negative int64.
func (r *Rand) Int63() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Int63()
}

// Float64 draws a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Float64()
}

// Bool reports true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Duration draws a uniform duration in [min, max).
func (r *Rand) Duration(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return min + time.Duration(r.r.Int63n(int64(max-min)))
}

// Perm draws a permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Perm(n)
}
