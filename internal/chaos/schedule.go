package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Event is one named fault action at a fixed offset from scenario start.
type Event struct {
	At   time.Duration
	Name string
	Do   func()
}

// Schedule is a deterministic list of fault events. Build it (from a
// Rand) before the scenario starts, then Play it on a goroutine: each
// event fires once its offset elapses. The event list and its order are
// fully determined by the seed; Play only maps the offsets onto real
// time.
type Schedule struct {
	mu     sync.Mutex
	events []Event
	fired  []string
	played bool
}

// Add appends one event. Events may be added in any order; Play and
// Describe sort by offset (stable, so same-offset events keep insertion
// order — which is deterministic when the builder is).
//
//pando:deterministic
func (s *Schedule) Add(at time.Duration, name string, do func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.played {
		panic("chaos: Schedule.Add after Play")
	}
	s.events = append(s.events, Event{At: at, Name: name, Do: do})
}

// Len reports how many events the schedule holds.
func (s *Schedule) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Describe renders the full schedule, one "offset name" line per event in
// firing order — the artifact to log so a seed's fault schedule is
// visible and comparable across runs. Two schedules built from the same
// seed must describe byte-identically (TestDescribeDeterministic pins
// this; detrand enforces the ingredients statically).
//
//pando:deterministic
func (s *Schedule) Describe() []string {
	s.mu.Lock()
	events := append([]Event(nil), s.events...)
	s.mu.Unlock()
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%8s  %s", e.At.Round(time.Millisecond), e.Name)
	}
	return out
}

// Play fires the events at their offsets from the moment it is called,
// returning when every event has fired or stop is closed. Run it on its
// own goroutine alongside the workload.
//
//pando:deterministic
func (s *Schedule) Play(stop <-chan struct{}) {
	s.mu.Lock()
	s.played = true
	events := append([]Event(nil), s.events...)
	s.mu.Unlock()
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	//pando:nondeterministic Play's whole job is mapping the seed-fixed offsets onto real time; the event list and order are already determined
	start := time.Now()
	for _, e := range events {
		//pando:nondeterministic real-time pacing of an already-deterministic offset list
		if d := time.Until(start.Add(e.At)); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-stop:
				timer.Stop()
				return
			}
		}
		select {
		case <-stop:
			return
		default:
		}
		e.Do()
		s.mu.Lock()
		s.fired = append(s.fired, e.Name)
		s.mu.Unlock()
	}
}

// Fired lists the names of the events that have fired, in firing order.
func (s *Schedule) Fired() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.fired...)
}
