package chaos

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"pando/internal/fleet"
	"pando/internal/journal"
)

// CheckExact verifies the core output invariant: got is exactly want(0),
// want(1), ..., want(n-1) — no missing, duplicated, reordered or foreign
// value. This is the paper's exactly-once in-order guarantee stated as a
// predicate.
func CheckExact[T comparable](got []T, n int, want func(i int) T) error {
	if len(got) != n {
		return fmt.Errorf("chaos: %d outputs, want %d (missing or duplicated results)", len(got), n)
	}
	for i, v := range got {
		if w := want(i); v != w {
			return fmt.Errorf("chaos: out[%d] = %v, want %v (duplicate, missing or misordered output)", i, v, w)
		}
	}
	return nil
}

// StaleLeases scans a fleet worker-set snapshot for sessions still leased
// (or being reclaimed) by a job that is no longer open. After every job
// of a pool has closed, repeated snapshots must converge to none — a
// persistent entry is a lease the pool lost track of.
func StaleLeases(workers []fleet.WorkerInfo, open func(job string) bool) []string {
	var stale []string
	for _, w := range workers {
		if (w.State == "leased" || w.State == "reclaiming") && w.Job != "" && !open(w.Job) {
			stale = append(stale, fmt.Sprintf("%s %s by closed job %q", w.Name, w.State, w.Job))
		}
	}
	return stale
}

// VerifyJournal re-opens the checkpoint journal at path after a run and
// checks byte identity: it must hold exactly the indices 0..n-1, and each
// payload must equal want(i) byte for byte — what a resumed master will
// replay must be indistinguishable from what an uninterrupted run would
// have produced.
func VerifyJournal(path string, n int, want func(i int) []byte) error {
	j, err := journal.Open(path, journal.Options{SyncInterval: -1, SnapshotEvery: -1})
	if err != nil {
		return fmt.Errorf("chaos: reopen journal: %w", err)
	}
	defer j.Close()
	entries := j.Completed()
	if len(entries) != n {
		return fmt.Errorf("chaos: journal holds %d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		if e.Idx != i {
			return fmt.Errorf("chaos: journal entry %d has index %d (gap or duplicate)", i, e.Idx)
		}
		if w := want(i); !bytes.Equal(e.Data, w) {
			return fmt.Errorf("chaos: journal payload %d = %q, want %q (resume would not be byte-identical)", i, e.Data, w)
		}
	}
	return nil
}

// VerifySegments is VerifyJournal for a sharded run: it reads every
// completion segment left under dir — all shards, all epochs, including
// the segments of masters that were killed mid-run — and checks that the
// union covers exactly the indices 0..n-1 and that every recorded
// payload equals want(i) byte for byte. Epochs of one shard may overlap
// (a migration copies the dead master's completed prefix into its
// successor's segment); overlapping records must agree.
func VerifySegments(dir string, n int, want func(i int) []byte) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return fmt.Errorf("chaos: scan segments: %w", err)
	}
	if len(paths) == 0 {
		return fmt.Errorf("chaos: no segments under %s", dir)
	}
	sort.Strings(paths)
	seen := make(map[int]bool, n)
	for _, p := range paths {
		entries, err := journal.ReadSegment(p)
		if err != nil {
			return fmt.Errorf("chaos: reread segment: %w", err)
		}
		for _, e := range entries {
			if e.Idx < 0 || e.Idx >= n {
				return fmt.Errorf("chaos: %s records index %d, outside 0..%d", filepath.Base(p), e.Idx, n-1)
			}
			if w := want(e.Idx); !bytes.Equal(e.Data, w) {
				return fmt.Errorf("chaos: %s payload for %d = %q, want %q (restore would not be byte-identical)",
					filepath.Base(p), e.Idx, e.Data, w)
			}
			seen[e.Idx] = true
		}
	}
	if len(seen) != n {
		for i := 0; i < n; i++ {
			if !seen[i] {
				return fmt.Errorf("chaos: index %d missing from every segment (result emitted but never made durable)", i)
			}
		}
	}
	return nil
}

// LeakGuard snapshots the number of live Pando goroutines so a scenario
// can assert it released everything it spun up. Because every live
// simulated connection owns relay goroutines, and every channel, engine,
// journal and pool runs its loops on goroutines, "no goroutine leaks"
// subsumes "no socket leaks" in the simulated world.
type LeakGuard struct {
	baseline int
}

// Guard snapshots the current count. Take it before building a scenario.
func Guard() *LeakGuard {
	return &LeakGuard{baseline: len(pandoStacks())}
}

// Check polls until the live Pando goroutine count returns to (or under)
// the baseline, failing with the leaked stacks after timeout. The
// baseline-relative check tolerates unrelated background goroutines that
// predate the scenario.
func (g *LeakGuard) Check(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		leaked := pandoStacks()
		if len(leaked) <= g.baseline {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %d pando goroutines live, baseline %d — leaked:\n\n%s",
				len(leaked), g.baseline, strings.Join(leaked, "\n\n"))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// pandoStacks returns the stack dumps of every live goroutine running
// Pando code (any frame in this module), excluding the calling goroutine.
func pandoStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			return filterStacks(string(buf))
		}
		buf = make([]byte, len(buf)*2)
	}
}

// filterStacks keeps the dumps whose frames run module code. The first
// dump is the calling goroutine (runtime.Stack lists it first) and is
// skipped; test-function goroutines live in *_test packages ("pando_test.")
// and do not match the module-frame patterns.
func filterStacks(dump string) []string {
	stacks := strings.Split(dump, "\n\n")
	var out []string
	for i, s := range stacks {
		if i == 0 {
			continue
		}
		if strings.Contains(s, "pando/internal/") || strings.Contains(s, "\npando.") {
			out = append(out, s)
		}
	}
	return out
}
