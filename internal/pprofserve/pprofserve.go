// Package pprofserve starts the standard net/http/pprof endpoint for the
// long-running commands. Profiling the hot path (allocations, mutex
// contention in the codec arena, syscall time in the vectored writer) is
// how the zero-alloc work is validated against a live deployment rather
// than only under `go test -bench`.
package pprofserve

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve exposes the pprof index, profile, heap, and friends at
// http://addr/debug/pprof/ in a background goroutine. It binds before
// returning so a bad address fails fast at startup instead of silently
// leaving the deployment unprofilable.
func Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}
