package chain

import (
	"testing"
	"time"
)

// fakeClock advances a fixed step per call.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestRetargeterRaisesDifficultyWhenTooFast(t *testing.T) {
	r := NewRetargeter(10, 4, time.Second, 1, 30)
	clk := &fakeClock{t: time.Unix(0, 0), step: 100 * time.Millisecond} // 10x too fast
	r.SetClock(clk.now)
	for i := 0; i < 4; i++ {
		r.BlockFound()
	}
	if r.Bits() != 11 {
		t.Fatalf("bits = %d, want 11 after a too-fast window", r.Bits())
	}
}

func TestRetargeterLowersDifficultyWhenTooSlow(t *testing.T) {
	r := NewRetargeter(10, 4, time.Second, 1, 30)
	clk := &fakeClock{t: time.Unix(0, 0), step: 10 * time.Second} // 10x too slow
	r.SetClock(clk.now)
	for i := 0; i < 4; i++ {
		r.BlockFound()
	}
	if r.Bits() != 9 {
		t.Fatalf("bits = %d, want 9 after a too-slow window", r.Bits())
	}
}

func TestRetargeterStableWhenOnTarget(t *testing.T) {
	r := NewRetargeter(10, 4, time.Second, 1, 30)
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Second}
	r.SetClock(clk.now)
	for i := 0; i < 12; i++ {
		r.BlockFound()
	}
	if r.Bits() != 10 {
		t.Fatalf("bits = %d, want unchanged 10", r.Bits())
	}
}

func TestRetargeterClamps(t *testing.T) {
	r := NewRetargeter(29, 1, time.Hour, 1, 30)
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Nanosecond} // absurdly fast
	r.SetClock(clk.now)
	for i := 0; i < 10; i++ {
		r.BlockFound()
	}
	if r.Bits() != 30 {
		t.Fatalf("bits = %d, want clamped at 30", r.Bits())
	}
}

func TestChainSetBitsAffectsTemplates(t *testing.T) {
	c := NewChain(8)
	if c.Bits() != 8 {
		t.Fatalf("bits = %d", c.Bits())
	}
	c.SetBits(12)
	tpl := c.NextTemplate("tx")
	if tpl.Bits != 12 {
		t.Fatalf("template bits = %d, want 12", tpl.Bits)
	}
}

func TestMiningWithRetargetingEndToEnd(t *testing.T) {
	// Mine a few windows with real (fast) mining: the retargeter should
	// push the difficulty up because CPU mining at 6 bits is instant.
	c := NewChain(6)
	r := NewRetargeter(6, 2, 500*time.Millisecond, 1, 20)
	startBits := r.Bits()
	for i := 0; i < 6; i++ {
		tpl := c.NextTemplate("tx")
		res := Mine(Attempt{Block: tpl, Start: 0, End: 1 << 30})
		if !res.Found {
			t.Fatal("unsolvable at low bits?")
		}
		b := tpl
		b.Nonce = res.Nonce
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
		c.SetBits(r.BlockFound())
	}
	if r.Bits() <= startBits {
		t.Fatalf("bits = %d, want > %d after instant windows", r.Bits(), startBits)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}
