package chain

import (
	"sync"
	"time"
)

// This file implements difficulty retargeting, the mechanism the paper's
// §4.2 describes for Bitcoin: "the difficulty is automatically adjusted
// such that the time between each successful block is roughly ten
// minutes", which is what makes forging history increasingly costly.
//
// Our adjustment is deliberately simple — ±1 difficulty bit per window,
// i.e. a halving or doubling of the expected work — which is coarse but
// demonstrates the feedback mechanism; production chains scale the target
// fractionally.

// Retargeter tracks block arrival times and adjusts the difficulty every
// window blocks.
type Retargeter struct {
	mu sync.Mutex
	// window is how many blocks between adjustments.
	window int
	// target is the desired time per block.
	target time.Duration
	// bits is the current difficulty.
	bits int
	// minBits and maxBits clamp the adjustment.
	minBits, maxBits int

	windowStart time.Time
	inWindow    int
	now         func() time.Time
}

// NewRetargeter creates a retargeter starting at startBits, adjusting
// every window blocks toward targetPerBlock, clamped to [minBits,
// maxBits].
func NewRetargeter(startBits, window int, targetPerBlock time.Duration, minBits, maxBits int) *Retargeter {
	if window < 1 {
		window = 1
	}
	if minBits < 0 {
		minBits = 0
	}
	if maxBits <= 0 || maxBits > 255 {
		maxBits = 255
	}
	return &Retargeter{
		window:  window,
		target:  targetPerBlock,
		bits:    clampInt(startBits, minBits, maxBits),
		minBits: minBits,
		maxBits: maxBits,
		now:     time.Now,
	}
}

// SetClock overrides the time source (tests).
func (r *Retargeter) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Bits returns the current difficulty.
func (r *Retargeter) Bits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bits
}

// BlockFound records one mined block and returns the difficulty to use
// for the next one. Every window blocks, the difficulty rises by one bit
// if the window completed faster than window x target (mining is too
// easy) and falls by one bit if slower.
func (r *Retargeter) BlockFound() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	//pando:allow locksend r.now is an injected clock (time.Now or a test stub); clocks read state, they never take locks or block
	now := r.now()
	if r.inWindow == 0 {
		r.windowStart = now
	}
	r.inWindow++
	if r.inWindow < r.window {
		return r.bits
	}
	elapsed := now.Sub(r.windowStart)
	want := r.target * time.Duration(r.window)
	switch {
	case elapsed < want/2:
		r.bits = clampInt(r.bits+1, r.minBits, r.maxBits)
	case elapsed > want*2:
		r.bits = clampInt(r.bits-1, r.minBits, r.maxBits)
	}
	r.inWindow = 0
	return r.bits
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SetBits lets the chain pick up the retargeted difficulty for the next
// template.
func (c *Chain) SetBits(bits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bits < 0 {
		bits = 0
	}
	c.bits = bits
}

// Bits returns the chain's current difficulty for new templates.
func (c *Chain) Bits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bits
}
