package chain

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestLeadingZeroBits(t *testing.T) {
	cases := []struct {
		h    [32]byte
		want int
	}{
		{[32]byte{0x80}, 0},
		{[32]byte{0x40}, 1},
		{[32]byte{0x01}, 7},
		{[32]byte{0x00, 0xFF}, 8},
		{[32]byte{0x00, 0x0F}, 12},
		{[32]byte{}, 256},
	}
	for _, c := range cases {
		if got := LeadingZeroBits(c.h); got != c.want {
			t.Fatalf("LeadingZeroBits(%v) = %d, want %d", c.h[:2], got, c.want)
		}
	}
}

func TestMeetsDifficulty(t *testing.T) {
	h := [32]byte{0x00, 0x10} // 11 leading zero bits
	if !MeetsDifficulty(h, 11) {
		t.Fatal("11 zero bits must meet difficulty 11")
	}
	if MeetsDifficulty(h, 12) {
		t.Fatal("11 zero bits must not meet difficulty 12")
	}
}

func TestBlockHashDeterministic(t *testing.T) {
	b := Block{Index: 1, Prev: "abc", Data: "tx", Bits: 8, Nonce: 42}
	if b.HashWithNonce(42) != b.Hash() {
		t.Fatal("Hash must equal HashWithNonce(Nonce)")
	}
	if b.HashWithNonce(42) == b.HashWithNonce(43) {
		t.Fatal("different nonces must hash differently")
	}
}

func TestMineFindsValidNonce(t *testing.T) {
	tpl := Block{Index: 1, Prev: "00ff", Data: "tx", Bits: 10}
	r := Mine(Attempt{Block: tpl, Start: 0, End: 1 << 16})
	if !r.Found {
		t.Fatal("difficulty 10 must be solvable within 65536 nonces (p ~ 1e-28 otherwise)")
	}
	if !MeetsDifficulty(tpl.HashWithNonce(r.Nonce), tpl.Bits) {
		t.Fatal("reported nonce is invalid")
	}
	if r.Hashes == 0 || r.Hashes > 1<<16 {
		t.Fatalf("hashes = %d", r.Hashes)
	}
}

func TestMineExhaustsRange(t *testing.T) {
	tpl := Block{Index: 1, Prev: "x", Data: "tx", Bits: 255} // unsolvable
	r := Mine(Attempt{Block: tpl, Start: 0, End: 100})
	if r.Found {
		t.Fatal("difficulty 255 cannot be met")
	}
	if r.Hashes != 100 {
		t.Fatalf("hashes = %d, want 100", r.Hashes)
	}
}

func mineBlock(t *testing.T, c *Chain, data string) Block {
	t.Helper()
	tpl := c.NextTemplate(data)
	for nonce := uint64(0); nonce < 1<<24; nonce++ {
		if MeetsDifficulty(tpl.HashWithNonce(nonce), tpl.Bits) {
			tpl.Nonce = nonce
			return tpl
		}
	}
	t.Fatal("could not mine test block")
	return Block{}
}

func TestChainAppendValid(t *testing.T) {
	c := NewChain(8)
	b := mineBlock(t, c, "tx1")
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 2 {
		t.Fatalf("height = %d, want 2", c.Height())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestChainRejectsBadPoW(t *testing.T) {
	c := NewChain(16)
	b := c.NextTemplate("tx")
	b.Nonce = 0
	if b.Valid() {
		t.Skip("improbably lucky nonce")
	}
	if err := c.Append(b); !errors.Is(err, ErrInvalidBlock) {
		t.Fatalf("err = %v, want ErrInvalidBlock", err)
	}
}

func TestChainRejectsStaleBlock(t *testing.T) {
	c := NewChain(4)
	b1 := mineBlock(t, c, "tx1")
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	// A second block mined against the old tip must be rejected.
	stale := b1
	if err := c.Append(stale); !errors.Is(err, ErrInvalidBlock) {
		t.Fatalf("err = %v, want ErrInvalidBlock", err)
	}
}

func TestChainRejectsWrongPrev(t *testing.T) {
	c := NewChain(4)
	b := mineBlock(t, c, "tx")
	b.Prev = "deadbeef"
	// Re-mine with the corrupted prev so PoW is right but linkage wrong.
	for nonce := uint64(0); ; nonce++ {
		if MeetsDifficulty(b.HashWithNonce(nonce), b.Bits) {
			b.Nonce = nonce
			break
		}
	}
	if err := c.Append(b); !errors.Is(err, ErrInvalidBlock) {
		t.Fatalf("err = %v, want ErrInvalidBlock", err)
	}
}

func TestMonitorMinesToTarget(t *testing.T) {
	// Sequential sanity run of the feedback loop: attempts are handled
	// inline until the chain reaches the target height.
	c := NewChain(8)
	m := NewMonitor(c, 4096, 4, nil)
	for !m.Done() {
		a, ok := m.NextAttempt()
		if !ok {
			break
		}
		m.Handle(Mine(a))
	}
	if c.Height() != 4 {
		t.Fatalf("height = %d, want 4", c.Height())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorDiscardsStaleResult(t *testing.T) {
	c := NewChain(6)
	m := NewMonitor(c, 1<<20, 3, nil)
	a1, _ := m.NextAttempt()
	r1 := Mine(a1)
	if !r1.Found {
		t.Skip("range unexpectedly devoid of solutions")
	}
	if m.Handle(r1) {
		t.Fatal("not done after one block")
	}
	h := c.Height()
	// Replaying the same (now stale) result must not extend the chain.
	m.Handle(r1)
	if c.Height() != h {
		t.Fatal("stale result extended the chain")
	}
}

func TestMonitorAttemptRangesAdvance(t *testing.T) {
	c := NewChain(200) // effectively unsolvable, ranges keep advancing
	m := NewMonitor(c, 100, 2, nil)
	a1, _ := m.NextAttempt()
	a2, _ := m.NextAttempt()
	if a1.End != a2.Start {
		t.Fatalf("ranges must tile: %v then %v", a1, a2)
	}
	if a1.Block.Index != a2.Block.Index {
		t.Fatal("attempts for the same tip must target the same height")
	}
}

func TestQuickMineNonceAlwaysInRange(t *testing.T) {
	f := func(seed uint16) bool {
		tpl := Block{Index: 1, Prev: "p", Data: string(rune(seed)), Bits: 4}
		start := uint64(seed)
		r := Mine(Attempt{Block: tpl, Start: start, End: start + 256})
		if !r.Found {
			return true // possible, though rare at 4 bits
		}
		return r.Nonce >= start && r.Nonce < start+256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
