// Package chain implements the proof-of-work blockchain substrate of the
// paper's crypto-currency mining application (§4.2): miners compete to
// find a nonce such that the hash of the nonce and the block of
// transactions combined is inferior to a difficulty threshold; once a
// valid nonce has been found the list of blocks is extended and all
// miners start working on the next block — a synchronous parallel search.
package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// Block is one element of the chain.
type Block struct {
	// Index is the block height (genesis is 0).
	Index int `json:"index"`
	// Prev is the hex hash of the previous block.
	Prev string `json:"prev"`
	// Data stands in for the block of transactions.
	Data string `json:"data"`
	// Bits is the difficulty: the hash must have at least Bits leading
	// zero bits.
	Bits int `json:"bits"`
	// Nonce is the proof of work.
	Nonce uint64 `json:"nonce"`
}

// headerBytes serializes the hashed portion of the block.
func (b *Block) headerBytes(nonce uint64) []byte {
	buf := make([]byte, 0, 8+8+len(b.Prev)+len(b.Data)+8)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(b.Index))
	buf = append(buf, tmp[:]...)
	buf = append(buf, b.Prev...)
	buf = append(buf, b.Data...)
	binary.BigEndian.PutUint64(tmp[:], uint64(b.Bits))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], nonce)
	buf = append(buf, tmp[:]...)
	return buf
}

// HashWithNonce returns the block hash for a candidate nonce.
func (b *Block) HashWithNonce(nonce uint64) [32]byte {
	return sha256.Sum256(b.headerBytes(nonce))
}

// Hash returns the hash with the block's own nonce.
func (b *Block) Hash() [32]byte { return b.HashWithNonce(b.Nonce) }

// HexHash returns the hash as a hex string.
func (b *Block) HexHash() string {
	h := b.Hash()
	return hex.EncodeToString(h[:])
}

// LeadingZeroBits counts the leading zero bits of a hash.
func LeadingZeroBits(h [32]byte) int {
	n := 0
	for _, b := range h {
		if b == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(b)
		break
	}
	return n
}

// MeetsDifficulty reports whether a hash satisfies the difficulty.
func MeetsDifficulty(h [32]byte, difficultyBits int) bool {
	return LeadingZeroBits(h) >= difficultyBits
}

// Valid reports whether the block's proof of work is correct.
func (b *Block) Valid() bool { return MeetsDifficulty(b.Hash(), b.Bits) }

// Attempt is one mining work unit: test every nonce in [Start, End) for
// the given block template. The monitor generates as many concurrent
// attempts as there are participating workers (paper Figure 11).
type Attempt struct {
	Block Block  `json:"block"` // template; Nonce field unused
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// Result is a worker's answer to an attempt.
type Result struct {
	Attempt Attempt `json:"attempt"`
	Found   bool    `json:"found"`
	Nonce   uint64  `json:"nonce"`
	// Hashes is how many nonces were tested (throughput accounting for
	// Table 2's Hashes/s column).
	Hashes uint64 `json:"hashes"`
}

// Mine tests every nonce in the attempt's range, stopping at the first
// valid one — the worker side of the mining application.
func Mine(a Attempt) Result {
	r := Result{Attempt: a}
	for nonce := a.Start; nonce < a.End; nonce++ {
		r.Hashes++
		if MeetsDifficulty(a.Block.HashWithNonce(nonce), a.Block.Bits) {
			r.Found = true
			r.Nonce = nonce
			return r
		}
	}
	return r
}

// Chain is an append-only validated list of blocks.
type Chain struct {
	mu     sync.Mutex
	blocks []Block
	bits   int
}

// ErrInvalidBlock rejects a block whose linkage or proof of work is wrong.
var ErrInvalidBlock = errors.New("chain: invalid block")

// NewChain creates a chain with a genesis block at the given difficulty.
func NewChain(difficultyBits int) *Chain {
	genesis := Block{Index: 0, Prev: "", Data: "genesis", Bits: 0}
	return &Chain{blocks: []Block{genesis}, bits: difficultyBits}
}

// Height returns the number of blocks, including genesis.
func (c *Chain) Height() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blocks)
}

// Tip returns the last block.
func (c *Chain) Tip() Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1]
}

// NextTemplate returns the block template miners should currently work
// on, with the given transaction data.
func (c *Chain) NextTemplate(data string) Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	tip := c.blocks[len(c.blocks)-1]
	return Block{
		Index: tip.Index + 1,
		Prev:  tip.HexHash(),
		Data:  data,
		Bits:  c.bits,
	}
}

// Append validates and appends a mined block. A block that extends a
// stale tip is rejected, which is how a late valid nonce for an already
// mined block is discarded.
func (c *Chain) Append(b Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	tip := c.blocks[len(c.blocks)-1]
	if b.Index != tip.Index+1 {
		return fmt.Errorf("%w: index %d does not extend tip %d", ErrInvalidBlock, b.Index, tip.Index)
	}
	if b.Prev != tip.HexHash() {
		return fmt.Errorf("%w: prev hash mismatch", ErrInvalidBlock)
	}
	if !b.Valid() {
		return fmt.Errorf("%w: proof of work does not meet difficulty %d", ErrInvalidBlock, b.Bits)
	}
	c.blocks = append(c.blocks, b)
	return nil
}

// Verify checks the whole chain's linkage and proofs of work.
func (c *Chain) Verify() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 1; i < len(c.blocks); i++ {
		b := c.blocks[i]
		prev := c.blocks[i-1]
		if b.Prev != prev.HexHash() || b.Index != prev.Index+1 || !b.Valid() {
			return fmt.Errorf("%w: at height %d", ErrInvalidBlock, i)
		}
	}
	return nil
}

// Blocks returns a copy of the chain.
func (c *Chain) Blocks() []Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Block(nil), c.blocks...)
}

// Monitor implements the feedback loop of the paper's Figure 11: it
// lazily provides mining attempts — as many as workers ask for — for the
// current block, and advances to the next block when a valid nonce comes
// back. Both the list of blocks and the computational requirements are
// potentially infinite, making the lazy streaming approach natural.
type Monitor struct {
	mu        sync.Mutex
	chain     *Chain
	rangeSize uint64
	nextStart uint64
	target    int // stop once the chain reaches this height; 0 = never
	dataFor   func(height int) string
}

// NewMonitor creates a monitor mining blocks onto chain in nonce ranges
// of rangeSize, stopping when the chain holds targetHeight blocks.
// dataFor supplies the transaction data for each height (nil uses a
// default).
func NewMonitor(chain *Chain, rangeSize uint64, targetHeight int, dataFor func(int) string) *Monitor {
	if dataFor == nil {
		dataFor = func(h int) string { return fmt.Sprintf("block-%d-transactions", h) }
	}
	return &Monitor{
		chain:     chain,
		rangeSize: rangeSize,
		target:    targetHeight,
		dataFor:   dataFor,
	}
}

// Done reports whether the target height has been reached.
func (m *Monitor) Done() bool {
	if m.target <= 0 {
		return false
	}
	return m.chain.Height() >= m.target
}

// NextAttempt returns the next work unit for the current tip. It is the
// lazy input generator: called only when a worker is available.
func (m *Monitor) NextAttempt() (Attempt, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Done() {
		return Attempt{}, false
	}
	//pando:allow locksend dataFor is the caller-supplied payload generator, documented non-blocking; Monitor.mu is the miner's only lock so it cannot be re-entered
	tpl := m.chain.NextTemplate(m.dataFor(m.chain.Height()))
	a := Attempt{Block: tpl, Start: m.nextStart, End: m.nextStart + m.rangeSize}
	m.nextStart += m.rangeSize
	return a, true
}

// Handle processes a worker's result: a valid nonce for the current tip
// extends the chain and resets the nonce window; stale or unsuccessful
// results just trigger new attempts. It returns true when mining is
// complete.
func (m *Monitor) Handle(r Result) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.Found {
		b := r.Attempt.Block
		b.Nonce = r.Nonce
		if err := m.chain.Append(b); err == nil {
			// New block: restart the nonce window for the next one.
			m.nextStart = 0
		}
		// A stale valid nonce (block already extended) is discarded.
	}
	return m.Done()
}
