package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestSpillPutLoadForget(t *testing.T) {
	s, err := OpenSpill(filepath.Join(t.TempDir(), "spill.seg"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Put(i, []byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// Random-access loads, out of append order.
	for i := n - 1; i >= 0; i-- {
		got, err := s.Load(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("payload-%03d", i); string(got) != want {
			t.Fatalf("Load(%d) = %q, want %q", i, got, want)
		}
	}
	for i := 0; i < n; i++ {
		s.Forget(i)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after forgetting all = %d", s.Len())
	}
	// Draining the store must truncate the segment.
	if s.Bytes() != 0 {
		t.Fatalf("Bytes after drain = %d, want 0", s.Bytes())
	}
	if _, err := s.Load(3); !errors.Is(err, ErrNotSpilled) {
		t.Fatalf("Load after Forget: %v, want ErrNotSpilled", err)
	}
}

func TestSpillDedupsAndIgnoresReSpill(t *testing.T) {
	s, err := OpenSpill(filepath.Join(t.TempDir(), "spill.seg"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(7, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(7, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("first")) {
		t.Fatalf("re-spill overwrote: %q", got)
	}
}

func TestSpillDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.seg")
	s, err := OpenSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := bytes.Repeat([]byte{0x5A}, 128)
	if err := s.Put(1, payload); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on disk behind the store's back.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xA5}, 10); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := s.Load(1); err == nil {
		t.Fatal("Load returned corrupted payload without error")
	}
}

func TestSpillCloseRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.seg")
	s, err := OpenSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spill file still exists after Close: %v", err)
	}
	if err := s.Put(2, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
}

func TestSpillTruncatesExistingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.seg")
	if err := os.WriteFile(path, []byte("stale garbage from a previous run"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Bytes() != 0 || s.Len() != 0 {
		t.Fatalf("stale state survived open: %d bytes, %d refs", s.Bytes(), s.Len())
	}
}
