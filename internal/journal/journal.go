// Package journal makes a Pando deployment's progress durable: it keeps
// an append-only on-disk log of completed (index, result) records plus
// periodic compacted snapshots, so a master that crashes mid-stream can be
// restarted and resume instead of redoing the whole computation.
//
// The paper's fault tolerance (§2.3) only covers volunteer crash-stop
// failures: the master is a single point of failure and a restart loses
// all progress of a long-running personal workload. BOINC-style volunteer
// computing treats checkpointing as table stakes (Anderson & Fedak); this
// package is the Go deployment's equivalent. The master journals each
// result as the StreamLender accepts it (after speculation dedup, so each
// index is recorded at most once); on restart the recovered completed set
// is handed back to the lender, which skips those indices at the input and
// replays their results to the output in order — the resumed run's output
// stream is byte-for-byte the output an uninterrupted run would have
// produced, with only the unfinished values re-lent to volunteers.
//
// Durability model: records are appended through a buffered writer and
// fsynced in batches on a configurable interval (Options.SyncInterval).
// A crash loses at most the records of the last un-synced batch — those
// values are simply recomputed on resume, never lost or duplicated in the
// output. Recovery tolerates a torn tail: a truncated or corrupt trailing
// record (the partial write of the crash itself) ends replay at the
// longest valid prefix, and the log is truncated back to it so the next
// append starts from a clean boundary.
//
// On-disk format, shared by the log and the snapshot:
//
//	record  := magic(0xA7) | uvarint(idx) | uvarint(len(payload)) | payload | crc32
//	crc32   := IEEE checksum of everything before it, little-endian
//
// The snapshot (path + ".snap") is the same record stream sorted by
// index, written to a temporary file and atomically renamed, then the log
// is truncated — compaction bounds recovery time and file count without a
// second format.
package journal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// DefaultSyncInterval is the default fsync batching interval. The journal
// bench (internal/bench, RunJournalComparison) picked it: batching at
// 100ms keeps the journal's end-to-end overhead on the collatz profile
// well under the 15% budget while bounding the crash-loss window to the
// last tenth of a second of results.
const DefaultSyncInterval = 100 * time.Millisecond

// DefaultSnapshotEvery is how many appended records trigger an automatic
// compaction.
const DefaultSnapshotEvery = 8192

// ErrClosed reports use of a closed journal.
var ErrClosed = errors.New("journal: closed")

// Options tunes a Journal.
type Options struct {
	// SyncInterval batches fsyncs: appended records become durable at
	// most this long after Record returns. Zero selects
	// DefaultSyncInterval; negative syncs after every record (safest,
	// slowest — the bench quantifies the gap).
	SyncInterval time.Duration
	// SnapshotEvery compacts the log into a fresh snapshot after this
	// many appended records. Zero selects DefaultSnapshotEvery; negative
	// disables automatic compaction (Snapshot can still be called).
	SnapshotEvery int
}

func (o Options) syncInterval() time.Duration {
	if o.SyncInterval == 0 {
		return DefaultSyncInterval
	}
	return o.SyncInterval
}

func (o Options) snapshotEvery() int {
	if o.SnapshotEvery == 0 {
		return DefaultSnapshotEvery
	}
	return o.SnapshotEvery
}

// Journal is a durable record of completed stream indices and their
// results. It is safe for concurrent use.
//
// Payloads live on disk only: the journal keeps just the set of known
// indices in memory (for dedup and Len), so a million-item stream costs
// a few megabytes of resident memory, not a copy of every result.
// Completed re-reads the files on demand, and compaction streams the old
// snapshot instead of rebuilding it from memory — its transient footprint
// is one inter-snapshot window of log records plus I/O buffers.
type Journal struct {
	path string
	opt  Options

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	known     map[int]struct{} // every completed index (snapshot + log + this run)
	recovered int              // entries recovered at Open (before any Record)
	appended  int              // records appended since the last snapshot
	dirty     bool             // un-synced bytes may sit in w or the page cache
	closed    bool

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if necessary) the journal at path, recovering any
// state a previous run left behind: the snapshot first, then the log,
// tolerating a torn tail on both. The parent directory must exist.
func Open(path string, opt Options) (*Journal, error) {
	j := &Journal{
		path:  path,
		opt:   opt,
		known: make(map[int]struct{}),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}

	// Snapshot: written atomically, but recovery still takes the longest
	// valid prefix so a damaged file degrades to recomputation, never to
	// a failed restart. Only the indices are retained; payloads are
	// re-read from disk on demand (Completed).
	if data, err := os.ReadFile(j.snapPath()); err == nil {
		scan(data, j.restore)
	}

	// The log shares the segment layer's recovery: longest valid prefix,
	// torn tail truncated back to a record boundary.
	f, err := openRecovered(path, j.restore)
	if err != nil {
		return nil, err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.recovered = len(j.known)

	if iv := j.opt.syncInterval(); iv > 0 {
		go j.syncLoop(iv)
	} else {
		close(j.done)
	}
	return j, nil
}

func (j *Journal) snapPath() string { return j.path + ".snap" }

// restore notes one recovered record's index.
func (j *Journal) restore(idx int, payload []byte) {
	j.known[idx] = struct{}{}
}

// Completed returns the recovered and recorded entries sorted by index,
// re-read from disk (payloads are not cached in memory). The returned
// slice and payloads are the caller's to keep.
func (j *Journal) Completed() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Records appended this run must be visible to the read below; a
	// flush (no fsync) suffices, we read through the same page cache.
	if j.w != nil {
		_ = j.w.Flush()
	}
	seen := make(map[int]struct{}, len(j.known))
	out := make([]Entry, 0, len(j.known))
	collect := func(idx int, payload []byte) {
		if _, dup := seen[idx]; dup {
			return
		}
		seen[idx] = struct{}{}
		out = append(out, Entry{Idx: idx, Data: payload})
	}
	if data, err := os.ReadFile(j.snapPath()); err == nil {
		scan(data, collect)
	}
	if data, err := os.ReadFile(j.path); err == nil {
		scan(data, collect)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Idx < out[b].Idx })
	return out
}

// Recovered reports how many entries Open restored from disk, before any
// Record of the current run.
func (j *Journal) Recovered() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered
}

// Len reports how many distinct indices the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.known)
}

// Path returns the log path the journal was opened at.
func (j *Journal) Path() string { return j.path }

// Record appends one completion. Appends are buffered and fsynced in
// batches (Options.SyncInterval); call Sync for an immediate barrier.
// Re-recording an already-known index is a no-op, so replay and
// speculation dedup upstream cannot double an entry.
func (j *Journal) Record(idx int, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, known := j.known[idx]; known {
		return nil
	}
	rec := appendRecord(nil, idx, payload)
	if _, err := j.w.Write(rec); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.known[idx] = struct{}{}
	j.appended++
	j.dirty = true
	if j.opt.syncInterval() < 0 {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if every := j.opt.snapshotEvery(); every > 0 && j.appended >= every {
		return j.snapshotLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the log: a durability barrier.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.dirty = false
	return nil
}

// Snapshot compacts the journal: the old snapshot is stream-merged with
// the log's records into a temporary file, fsynced, atomically renamed
// over the snapshot (with the directory fsynced so the rename itself is
// durable), and only then is the log truncated. Recovery after a crash
// at any point sees either the old snapshot plus the old log or the new
// snapshot — never less. Transient memory is one inter-snapshot window
// of log records, not the full history.
func (j *Journal) Snapshot() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.snapshotLocked()
}

func (j *Journal) snapshotLocked() error {
	// The log must be durable before it is truncated: a failed or torn
	// compaction must leave the old snapshot+log pair complete.
	if err := j.syncLocked(); err != nil {
		return err
	}
	// The log holds at most one inter-snapshot window of records; sort
	// them in memory for the merge. (Indices are unique across snapshot
	// and log: Record refuses known ones.)
	logData, err := os.ReadFile(j.path)
	if err != nil {
		return fmt.Errorf("journal: read log for compaction: %w", err)
	}
	var fresh []Entry
	scan(logData, func(idx int, payload []byte) {
		fresh = append(fresh, Entry{Idx: idx, Data: payload})
	})
	logData = nil
	sort.Slice(fresh, func(a, b int) bool { return fresh[a].Idx < fresh[b].Idx })

	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.snapPath())+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: snapshot tmp: %w", err)
	}
	tmpName := tmp.Name()
	werr := j.mergeSnapshot(tmp, fresh)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: snapshot write: %w", werr)
	}
	if err := os.Rename(tmpName, j.snapPath()); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	// The rename is a directory-entry update; without fsyncing the
	// directory, power loss could surface the OLD snapshot next to the
	// about-to-be-truncated log, silently losing the compacted window.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("journal: snapshot dir sync: %w", err)
	}
	// Durable snapshot in place: the log's contents are now redundant.
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncate log: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: rewind log: %w", err)
	}
	j.w.Reset(j.f)
	j.appended = 0
	j.dirty = false
	return nil
}

// mergeSnapshot writes the old snapshot's records merged with the sorted
// fresh log records to w, both in ascending index order. The old
// snapshot is streamed record by record, never loaded whole.
func (j *Journal) mergeSnapshot(w io.Writer, fresh []Entry) error {
	bw := bufio.NewWriter(w)
	var frame []byte
	emit := func(e Entry) error {
		frame = appendRecord(frame[:0], e.Idx, e.Data)
		_, err := bw.Write(frame)
		return err
	}

	old, err := os.Open(j.snapPath())
	if err == nil {
		defer old.Close()
		br := bufio.NewReaderSize(old, 1<<16)
		for {
			e, ok := readRecord(br)
			if !ok {
				break // end, or damaged tail: longest valid prefix
			}
			for len(fresh) > 0 && fresh[0].Idx < e.Idx {
				if err := emit(fresh[0]); err != nil {
					return err
				}
				fresh = fresh[1:]
			}
			if len(fresh) > 0 && fresh[0].Idx == e.Idx {
				// Defensive: cannot happen while Record dedups, and the
				// snapshot's (older) record wins if it ever does.
				fresh = fresh[1:]
			}
			if err := emit(e); err != nil {
				return err
			}
		}
	}
	for _, e := range fresh {
		if err := emit(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncLoop fsyncs dirty batches on the configured interval.
func (j *Journal) syncLoop(iv time.Duration) {
	defer close(j.done)
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.mu.Lock()
			if j.closed {
				j.mu.Unlock()
				return
			}
			_ = j.syncLocked()
			j.mu.Unlock()
		}
	}
}

// Close flushes, fsyncs and closes the journal. Further operations return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	j.mu.Unlock()
	close(j.stop)
	<-j.done
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}
