package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := SegmentPath(dir, "job", 1, 0)

	s, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Record(i*3, []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Dedup: re-recording a known index must be a no-op.
	if err := s.Record(3, []byte("SHOULD NOT LAND")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery must see exactly the recorded set, and appends must
	// dedup against the recovered entries.
	s2, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Recovered() != 10 {
		t.Fatalf("Recovered = %d, want 10", s2.Recovered())
	}
	if err := s2.Record(6, []byte("SHOULD NOT LAND EITHER")); err != nil {
		t.Fatal(err)
	}
	entries, err := s2.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("Completed len = %d, want 10", len(entries))
	}
	for i, e := range entries {
		if e.Idx != i*3 || !bytes.Equal(e.Data, []byte(fmt.Sprintf("r%d", i))) {
			t.Fatalf("entry %d = (%d, %q)", i, e.Idx, e.Data)
		}
	}
}

func TestSegmentTornTail(t *testing.T) {
	dir := t.TempDir()
	path := SegmentPath(dir, "job", 0, 0)
	s, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Record(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the partial write of a crash: garbage after the last record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{recordMagic, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Recovered() != 5 {
		t.Fatalf("Recovered = %d, want 5 (torn tail dropped)", s2.Recovered())
	}
	// The truncation must leave a clean boundary for the next append.
	if err := s2.Record(5, []byte{5}); err != nil {
		t.Fatal(err)
	}
	entries, err := s2.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("after truncate+append: %d entries, want 6", len(entries))
	}
}

func TestCopySegment(t *testing.T) {
	dir := t.TempDir()
	src := SegmentPath(dir, "job", 2, 0)
	s, err := OpenSegment(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := s.Record(100+i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Torn tail on the source: the copy must carry only the valid prefix.
	raw, _ := os.ReadFile(src)
	if err := os.WriteFile(src, append(raw, 0xA7, 0x01), 0o644); err != nil {
		t.Fatal(err)
	}

	dst := SegmentPath(dir, "job", 3, 1)
	n, err := CopySegment(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("copied %d records, want 7", n)
	}
	got, err := ReadSegment(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("dst holds %d records, want 7", len(got))
	}
	// The adopting shard opens the copy and continues appending into it.
	adopted, err := OpenSegment(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer adopted.Close()
	if adopted.Recovered() != 7 {
		t.Fatalf("adopted Recovered = %d, want 7", adopted.Recovered())
	}
	if err := adopted.Record(100, []byte("dup must not land")); err != nil {
		t.Fatal(err)
	}
	if adopted.Len() != 7 {
		t.Fatalf("dedup across the copy failed: Len = %d, want 7", adopted.Len())
	}
	s.Close()
}

func TestReadSegmentMissing(t *testing.T) {
	entries, err := ReadSegment(filepath.Join(t.TempDir(), "absent.seg"))
	if err != nil || entries != nil {
		t.Fatalf("missing segment: entries=%v err=%v, want nil/nil", entries, err)
	}
}
