package journal

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// SpillStore is a non-durable overflow segment in the journal's record
// format: the StreamLender parks far-ahead pending results here when its
// reorder window exceeds the configured high-water mark, bounding the
// master's heap at O(window) for arbitrarily long streams (the
// memory-bounded streaming half of the hot-path work).
//
// Unlike the Journal it amortizes nothing and promises no durability —
// a spilled record only needs to outlive the moment the output stream
// reaches its index — so the store is truncated at open, writes skip
// fsync entirely, and Close removes the file. What it shares with the
// journal is the record framing (magic | uvarint idx | uvarint len |
// payload | crc32), so a spilled payload is CRC-checked on the way back
// in: a bad sector degrades to a stream failure, never to silently
// corrupted output.
//
// Concurrency: safe for concurrent use. Appends go through WriteAt at a
// tracked offset and loads through ReadAt, so readers never disturb the
// append position.
type SpillStore struct {
	path string

	mu      sync.Mutex
	f       *os.File
	size    int64 // append offset
	refs    map[int]spillRef
	scratch []byte // reused append frame buffer
	closed  bool
}

// spillRef locates one spilled record in the file.
type spillRef struct {
	off int64
	n   int
}

// ErrNotSpilled reports a Load of an index the store does not hold.
var ErrNotSpilled = errors.New("journal: index not spilled")

// OpenSpill creates (or truncates) the spill segment at path. The parent
// directory must exist. Spilled state is meaningless across runs, so
// nothing is ever recovered from an existing file.
func OpenSpill(path string) (*SpillStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open spill %s: %w", path, err)
	}
	return &SpillStore{
		path: path,
		f:    f,
		refs: make(map[int]spillRef),
	}, nil
}

// Put appends one (index, payload) record. Re-spilling a held index is a
// no-op, mirroring Journal.Record's dedup. The payload is copied to disk
// before Put returns; the caller's buffer is free to recycle.
func (s *SpillStore) Put(idx int, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, held := s.refs[idx]; held {
		return nil
	}
	s.scratch = appendRecord(s.scratch[:0], idx, payload)
	if _, err := s.f.WriteAt(s.scratch, s.size); err != nil {
		return fmt.Errorf("journal: spill write: %w", err)
	}
	s.refs[idx] = spillRef{off: s.size, n: len(s.scratch)}
	s.size += int64(len(s.scratch))
	return nil
}

// Has reports whether idx is currently spilled.
func (s *SpillStore) Has(idx int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, held := s.refs[idx]
	return held
}

// Load reads one spilled payload back, CRC-verified. The returned slice
// is the caller's to keep. The record stays in the store until Forget.
func (s *SpillStore) Load(idx int) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	ref, held := s.refs[idx]
	s.mu.Unlock()
	if !held {
		return nil, fmt.Errorf("%w: %d", ErrNotSpilled, idx)
	}
	buf := make([]byte, ref.n)
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("journal: spill read %d: %w", idx, err)
	}
	gotIdx, payload, _, ok := parseRecord(buf)
	if !ok || gotIdx != idx {
		return nil, fmt.Errorf("journal: spill record %d corrupt", idx)
	}
	return payload, nil
}

// Forget drops a spilled index once the output stream has consumed it.
// When the last record is forgotten the file truncates back to zero, so
// the segment's disk footprint tracks the live overflow window instead of
// the whole stream.
func (s *SpillStore) Forget(idx int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	delete(s.refs, idx)
	if len(s.refs) == 0 && s.size > 0 {
		if s.f.Truncate(0) == nil {
			s.size = 0
		}
	}
}

// Len reports how many records the store currently holds.
func (s *SpillStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.refs)
}

// Bytes reports the segment's current on-disk size.
func (s *SpillStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Close closes and removes the segment file; spilled state never outlives
// the run.
func (s *SpillStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Close()
	if rerr := os.Remove(s.path); err == nil && !os.IsNotExist(rerr) {
		err = rerr
	}
	return err
}
