package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func entryMap(entries []Entry) map[int]string {
	m := make(map[int]string, len(entries))
	for _, e := range entries {
		m[e.Idx] = string(e.Data)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{}
	for i := 0; i < 100; i++ {
		payload := fmt.Sprintf("result-%d", i*i)
		if err := j.Record(i, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		want[i] = payload
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Recovered() != 100 {
		t.Fatalf("Recovered = %d, want 100", j2.Recovered())
	}
	got := entryMap(j2.Completed())
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("entry %d = %q, want %q", i, got[i], w)
		}
	}
	// Sorted by index.
	entries := j2.Completed()
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Idx >= entries[i].Idx {
			t.Fatalf("Completed not sorted: %d before %d", entries[i-1].Idx, entries[i].Idx)
		}
	}
}

func TestRecordDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(7, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(7, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if got := entryMap(j2.Completed())[7]; got != "first" {
		t.Fatalf("entry 7 = %q, want %q (first record wins)", got, "first")
	}
}

// TestTornTailRecovery crashes mid-append: the log ends with a partial
// record, and recovery must keep the longest valid prefix and truncate
// the garbage so later appends survive another recovery.
func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Record(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tear := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-3] },                                          // truncated mid-record
		func(b []byte) []byte { return append(b, 0xA7, 0x05) },                                 // partial next record
		func(b []byte) []byte { return append(b, bytes.Repeat([]byte{0xFF}, 40)...) },          // garbage tail
		func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)-1] ^= 0xFF; return b }, // corrupt crc
	} {
		torn := tear(append([]byte(nil), data...))
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := Open(path, Options{SyncInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		n := j2.Len()
		if n < 9 || n > 10 {
			t.Fatalf("recovered %d entries, want 9 or 10 (longest valid prefix)", n)
		}
		// The journal stays usable: append and recover once more.
		if err := j2.Record(1000+n, []byte("post-tear")); err != nil {
			t.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		j3, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if j3.Len() != n+1 {
			t.Fatalf("after re-append: %d entries, want %d", j3.Len(), n+1)
		}
		j3.Close()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		os.Remove(path + ".snap")
	}
}

// TestSnapshotCompaction verifies Snapshot moves the state into the
// compacted file, truncates the log, and recovery sees the union of
// snapshot and post-snapshot log records.
func TestSnapshotCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := j.Record(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("log not truncated after snapshot: %d bytes", fi.Size())
	}
	for i := 50; i < 60; i++ {
		if err := j.Record(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 60 {
		t.Fatalf("recovered %d entries, want 60 (snapshot + log)", j2.Len())
	}
	got := entryMap(j2.Completed())
	for i := 0; i < 60; i++ {
		if got[i] != fmt.Sprintf("v%d", i) {
			t.Fatalf("entry %d = %q", i, got[i])
		}
	}
}

func TestAutoSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{SyncInterval: -1, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 25; i++ {
		if err := j.Record(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + ".snap"); err != nil {
		t.Fatalf("auto snapshot not written: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 25 records with compaction every 10: the log holds at most the
	// 5 records after the last snapshot.
	if fi.Size() > 5*16 {
		t.Fatalf("log not compacted: %d bytes", fi.Size())
	}
}

// TestBatchedSyncDurable checks the batched-fsync contract: records are
// durable after the sync interval has elapsed (without Close).
func TestBatchedSyncDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Read the file through a second handle, as a restarted master
		// would; j is deliberately never closed (the "crash").
		j2, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := j2.Len()
		j2.Close()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("record never became durable through batched sync")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				idx := g*100 + i
				if err := j.Record(idx, []byte(fmt.Sprintf("r%d", idx))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 800 {
		t.Fatalf("recovered %d entries, want 800", j2.Len())
	}
}

func TestClosedErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if err := j.Record(1, nil); err != ErrClosed {
		t.Fatalf("Record after Close = %v, want ErrClosed", err)
	}
	if err := j.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := j.Snapshot(); err != ErrClosed {
		t.Fatalf("Snapshot after Close = %v, want ErrClosed", err)
	}
}

// TestRepeatedSnapshotsMerge exercises the stream-merge compaction path:
// a second snapshot must merge the existing snapshot with the fresh log
// records, in index order, without losing either side.
func TestRepeatedSnapshotsMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved index ranges across three compaction windows.
	write := func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			if err := j.Record(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	write(0, 40, 2)  // evens 0..38
	write(1, 40, 2)  // odds merge between them
	write(40, 60, 1) // appended past the merged range
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	entries := j2.Completed()
	if len(entries) != 60 {
		t.Fatalf("recovered %d entries, want 60", len(entries))
	}
	for i, e := range entries {
		if e.Idx != i || string(e.Data) != fmt.Sprintf("v%d", i) {
			t.Fatalf("entry %d = (%d, %q), want (%d, %q)", i, e.Idx, e.Data, i, fmt.Sprintf("v%d", i))
		}
	}
}

// TestCompletedSeesUnsyncedRecords: Completed must include records still
// sitting in the write buffer (flushed, not yet fsynced).
func TestCompletedSeesUnsyncedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{SyncInterval: time.Hour}) // never auto-syncs
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record(3, []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	got := entryMap(j.Completed())
	if got[3] != "buffered" {
		t.Fatalf("Completed = %v, want buffered record visible", got)
	}
}
