package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// This file is the single definition of the append-only segment format
// every durable byte of a deployment shares — the checkpoint journal and
// its snapshot (journal.go), the spill overflow store (spill.go), and the
// per-shard completion segments of a sharded master (internal/shard):
//
//	record  := magic(0xA7) | uvarint(idx) | uvarint(len(payload)) | payload | crc32
//	crc32   := IEEE checksum of everything before it, little-endian
//
// One framing, one parser, one torn-tail recovery path: any reader takes
// the longest valid record prefix of a file and treats the rest as the
// partial write of a crash, so a segment producer never needs a commit
// protocol beyond "append, then fsync when durability is due".

// recordMagic starts every record; a resync guard against garbage.
const recordMagic = 0xA7

// maxPayload bounds a single record so a corrupt length cannot make
// recovery attempt a multi-gigabyte allocation.
const maxPayload = 64 << 20

// Entry is one recovered completion record.
type Entry struct {
	Idx  int
	Data []byte
}

// appendRecord frames one record into buf.
func appendRecord(buf []byte, idx int, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, recordMagic)
	buf = binary.AppendUvarint(buf, uint64(idx))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// parseRecord decodes one record at the start of b, returning the
// consumed length. ok is false on any framing, bounds or checksum error.
func parseRecord(b []byte) (idx int, payload []byte, consumed int, ok bool) {
	if len(b) < 1 || b[0] != recordMagic {
		return 0, nil, 0, false
	}
	off := 1
	u, n := binary.Uvarint(b[off:])
	if n <= 0 || u > uint64(int(^uint(0)>>1)) {
		return 0, nil, 0, false
	}
	off += n
	ln, n := binary.Uvarint(b[off:])
	if n <= 0 || ln > maxPayload {
		return 0, nil, 0, false
	}
	off += n
	if uint64(len(b)-off) < ln+4 {
		return 0, nil, 0, false
	}
	end := off + int(ln)
	sum := binary.LittleEndian.Uint32(b[end : end+4])
	if crc32.ChecksumIEEE(b[:end]) != sum {
		return 0, nil, 0, false
	}
	payload = append([]byte(nil), b[off:end]...)
	return int(u), payload, end + 4, true
}

// scan parses records from data, invoking emit for each valid one, and
// returns the byte length of the longest valid prefix plus how many
// records it held. It never panics on malformed input.
func scan(data []byte, emit func(idx int, payload []byte)) (prefix, n int) {
	off := 0
	for off < len(data) {
		idx, payload, next, ok := parseRecord(data[off:])
		if !ok {
			return off, n
		}
		emit(idx, payload)
		off += next
		n++
	}
	return off, n
}

// readRecord reads and validates one record from br. ok is false at the
// end of the stream or on the first damaged record.
func readRecord(br *bufio.Reader) (Entry, bool) {
	magic, err := br.ReadByte()
	if err != nil || magic != recordMagic {
		return Entry{}, false
	}
	head := []byte{recordMagic}
	readUvarint := func() (uint64, bool) {
		var u uint64
		for shift := 0; shift < 64; shift += 7 {
			b, err := br.ReadByte()
			if err != nil {
				return 0, false
			}
			head = append(head, b)
			u |= uint64(b&0x7F) << shift
			if b&0x80 == 0 {
				return u, true
			}
		}
		return 0, false
	}
	idx, ok := readUvarint()
	if !ok || idx > uint64(int(^uint(0)>>1)) {
		return Entry{}, false
	}
	ln, ok := readUvarint()
	if !ok || ln > maxPayload {
		return Entry{}, false
	}
	payload := make([]byte, ln)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Entry{}, false
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return Entry{}, false
	}
	sum := crc32.ChecksumIEEE(head)
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if sum != binary.LittleEndian.Uint32(crc[:]) {
		return Entry{}, false
	}
	return Entry{Idx: int(idx), Data: payload}, true
}

// openRecovered opens (creating if necessary) the record file at path,
// replays its longest valid record prefix through emit, truncates any
// torn tail back to the last record boundary, and leaves the file
// positioned for appends. Both the checkpoint journal's log and shard
// segments recover through this one path.
func openRecovered(path string, emit func(idx int, payload []byte)) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	prefix, _ := scan(data, emit)
	if prefix < len(data) {
		// Torn tail from a crash: truncate back to the last valid record
		// so the next append starts on a record boundary.
		if err := f.Truncate(int64(prefix)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(prefix), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	return f, nil
}

// ReadSegment returns the valid record prefix of the file at path, in
// file order, tolerating a torn tail. A missing file is an empty segment.
func ReadSegment(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read segment %s: %w", path, err)
	}
	var out []Entry
	scan(data, func(idx int, payload []byte) {
		out = append(out, Entry{Idx: idx, Data: payload})
	})
	return out, nil
}

// SegmentPath names one shard's completion segment: dir/base.shardNN.eE.seg,
// where shard identifies the owned range set and epoch counts ownership
// hand-offs — a migrated range continues in a fresh epoch file seeded from
// a copy of its predecessor, so both files coexist during the hand-off and
// an operator can see the lineage on disk.
func SegmentPath(dir, base string, shard, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard%02d.e%d.seg", base, shard, epoch))
}

// CopySegment copies the valid record prefix of src to dst (write to a
// temporary file, fsync, atomic rename): the journal-segment file copy of
// a shard hand-off. A torn tail on src — the crash that triggered the
// migration — is dropped, not propagated; those results are simply
// recomputed by the adopting shard. Returns how many records were copied.
func CopySegment(src, dst string) (int, error) {
	data, err := os.ReadFile(src)
	if err != nil {
		return 0, fmt.Errorf("journal: copy segment: %w", err)
	}
	prefix, n := scan(data, func(int, []byte) {})
	dir := filepath.Dir(dst)
	tmp, err := os.CreateTemp(dir, filepath.Base(dst)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("journal: copy segment tmp: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data[:prefix])
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("journal: copy segment write: %w", werr)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("journal: copy segment rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, fmt.Errorf("journal: copy segment dir sync: %w", err)
	}
	return n, nil
}

// Segment is one shard's append-only completion log: the record format
// and torn-tail recovery of the checkpoint journal without its snapshot
// and fsync machinery. A shard records each (global index, encoded
// result) as its engine accepts it; on migration the file is copied to
// the adopting shard, whose segment recovers the entries and dedups
// appends against them — re-recording a recovered index is a no-op, so a
// recomputed result never doubles an entry.
//
// Appends are buffered; Sync flushes and fsyncs (the barrier a hand-off
// takes before copying). It is safe for concurrent use.
type Segment struct {
	path string

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	known     map[int]struct{}
	recovered int
	dirty     bool
	closed    bool
}

// OpenSegment opens (creating if necessary) the segment at path,
// recovering the valid record prefix a previous owner left behind. The
// parent directory must exist.
func OpenSegment(path string) (*Segment, error) {
	s := &Segment{path: path, known: make(map[int]struct{})}
	f, err := openRecovered(path, func(idx int, payload []byte) {
		s.known[idx] = struct{}{}
	})
	if err != nil {
		return nil, err
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.recovered = len(s.known)
	return s, nil
}

// Record appends one completion. Re-recording a known index — a restored
// entry or a migration replay — is a no-op.
func (s *Segment) Record(idx int, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, known := s.known[idx]; known {
		return nil
	}
	rec := appendRecord(nil, idx, payload)
	if _, err := s.w.Write(rec); err != nil {
		return fmt.Errorf("journal: segment append: %w", err)
	}
	s.known[idx] = struct{}{}
	s.dirty = true
	return nil
}

// Has reports whether idx is recorded in this segment.
func (s *Segment) Has(idx int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, known := s.known[idx]
	return known
}

// Len reports how many distinct indices the segment holds.
func (s *Segment) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.known)
}

// Recovered reports how many entries OpenSegment restored from disk.
func (s *Segment) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// Completed returns the segment's entries re-read from disk in file
// order (payloads are not cached in memory). Buffered appends are flushed
// first so the read sees them through the page cache.
func (s *Segment) Completed() ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			return nil, fmt.Errorf("journal: segment flush: %w", err)
		}
	}
	return ReadSegment(s.path)
}

// Sync flushes buffered records and fsyncs the file: the durability
// barrier a migration takes before copying the segment.
func (s *Segment) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.dirty {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("journal: segment flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("journal: segment fsync: %w", err)
	}
	s.dirty = false
	return nil
}

// Close flushes and closes the segment file (it stays on disk — a
// segment is the durable record of its range; remove it explicitly when
// the run's output is no longer needed).
func (s *Segment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
