package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to recovery as both the log and
// the snapshot: truncated or garbage trailing records must recover the
// longest valid prefix, never panic, and leave the journal usable for
// further appends. When the input happens to start with a valid record
// stream, every recovered payload must match what the framing says.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{recordMagic})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	valid := appendRecord(nil, 0, []byte("hello"))
	valid = appendRecord(valid, 1, []byte("world"))
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add(append(append([]byte(nil), valid...), 0xA7, 0x00, 0x7F))
	big := appendRecord(nil, 1<<40, bytes.Repeat([]byte{'x'}, 300))
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		logPath := filepath.Join(dir, "j.log")
		if err := os.WriteFile(logPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Also present the same bytes as a snapshot, with an empty log.
		snapDir := filepath.Join(dir, "snap")
		if err := os.Mkdir(snapDir, 0o755); err != nil {
			t.Fatal(err)
		}
		snapLog := filepath.Join(snapDir, "j.log")
		if err := os.WriteFile(snapLog+".snap", data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Reference parse: the longest valid prefix of data.
		want := make(map[int]string)
		prefix, n := scan(data, func(idx int, payload []byte) {
			if _, dup := want[idx]; !dup {
				want[idx] = string(payload)
			}
		})
		if prefix > len(data) {
			t.Fatalf("scan prefix %d beyond input length %d", prefix, len(data))
		}
		_ = n

		for _, path := range []string{logPath, snapLog} {
			j, err := Open(path, Options{SyncInterval: -1})
			if err != nil {
				t.Fatalf("Open(%s) = %v (recovery must degrade, not fail)", path, err)
			}
			got := entryMap(j.Completed())
			if len(got) != len(want) {
				t.Fatalf("recovered %d entries, want %d", len(got), len(want))
			}
			for idx, w := range want {
				if got[idx] != w {
					t.Fatalf("entry %d = %q, want %q", idx, got[idx], w)
				}
			}
			// The journal must stay usable after recovering a damaged
			// file: append, close, recover again.
			extra := 1000000
			for {
				if _, taken := want[extra]; !taken {
					break
				}
				extra++
			}
			if err := j.Record(extra, []byte("post-recovery")); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, err := Open(path, Options{SyncInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			if got := entryMap(j2.Completed()); got[extra] != "post-recovery" {
				t.Fatalf("post-recovery append lost: %q", got[extra])
			}
			if j2.Len() != len(want)+1 {
				t.Fatalf("after re-append: %d entries, want %d", j2.Len(), len(want)+1)
			}
			j2.Close()
		}
	})
}

// TestScanNoPanicExhaustiveSmall drives scan over every 1- and 2-byte
// input and a grid of mutations of a valid record, complementing the
// fuzzer on builds where fuzzing is not run.
func TestScanNoPanicExhaustiveSmall(t *testing.T) {
	for b := 0; b < 256; b++ {
		scan([]byte{byte(b)}, func(int, []byte) {})
		for c := 0; c < 256; c += 17 {
			scan([]byte{byte(b), byte(c)}, func(int, []byte) {})
		}
	}
	valid := appendRecord(nil, 42, []byte("payload"))
	for i := range valid {
		for _, bit := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= bit
			scan(mut, func(int, []byte) {})
			scan(mut[:i], func(int, []byte) {})
		}
	}
}

// TestParseRecordBigLength ensures a corrupt huge length field is
// rejected instead of attempting the allocation.
func TestParseRecordBigLength(t *testing.T) {
	var buf []byte
	buf = append(buf, recordMagic)
	buf = append(buf, 0x01)                               // idx = 1
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // len ≈ 2^41
	buf = append(buf, bytes.Repeat([]byte{0x00}, 32)...)  // "payload"
	if _, _, _, ok := parseRecord(buf); ok {
		t.Fatal("parseRecord accepted an oversized length")
	}
	prefix, n := scan(buf, func(int, []byte) {})
	if prefix != 0 || n != 0 {
		t.Fatalf("scan = (%d, %d), want (0, 0)", prefix, n)
	}
}

// sanity check used by the fuzz target's seed corpus construction
func TestAppendRecordRoundtrip(t *testing.T) {
	var buf []byte
	for i := 0; i < 10; i++ {
		buf = appendRecord(buf, i*7, []byte(fmt.Sprintf("v-%d", i)))
	}
	got := map[int]string{}
	prefix, n := scan(buf, func(idx int, p []byte) { got[idx] = string(p) })
	if prefix != len(buf) || n != 10 {
		t.Fatalf("scan = (%d, %d), want (%d, 10)", prefix, n, len(buf))
	}
	for i := 0; i < 10; i++ {
		if got[i*7] != fmt.Sprintf("v-%d", i) {
			t.Fatalf("entry %d = %q", i*7, got[i*7])
		}
	}
}
