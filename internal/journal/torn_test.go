package journal

// Exhaustive torn-tail recovery: the log is truncated at EVERY byte
// offset — inside the magic, the varints, the payload, the CRC, and on
// each record boundary — and recovery must always restore exactly the
// records whose frames fit the surviving prefix, stay appendable, and
// survive a second recovery. The original torn-tail test sampled a few
// offsets; a crash can stop a write anywhere.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildTornFixture writes records with varied payload shapes (empty,
// 1-byte, multi-byte, binary with embedded magic bytes) and returns the
// log's bytes plus each record's end offset.
func buildTornFixture(t *testing.T, path string) (data []byte, ends []int, payloads [][]byte) {
	t.Helper()
	payloads = [][]byte{
		[]byte("first"),
		{},
		{recordMagic, recordMagic, 0x00},
		[]byte("a much longer payload so the length varint matters"),
		{0xFF},
		bytes.Repeat([]byte{0xA7}, 17),
	}
	j, err := Open(path, Options{SyncInterval: -1, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if err := j.Record(i, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive the record boundaries by scanning the valid file.
	off := 0
	for off < len(data) {
		_, _, n, ok := parseRecord(data[off:])
		if !ok {
			t.Fatalf("fixture does not scan at offset %d", off)
		}
		off += n
		ends = append(ends, off)
	}
	if len(ends) != len(payloads) {
		t.Fatalf("fixture scanned %d records, want %d", len(ends), len(payloads))
	}
	return data, ends, payloads
}

// recordsThatFit reports how many whole records end at or before cut.
func recordsThatFit(ends []int, cut int) int {
	n := 0
	for _, e := range ends {
		if e <= cut {
			n++
		}
	}
	return n
}

func TestTornTailEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	data, ends, payloads := buildTornFixture(t, filepath.Join(dir, "fixture.log"))

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.log", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecords := recordsThatFit(ends, cut)

		j, err := Open(path, Options{SyncInterval: -1, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if got := j.Recovered(); got != wantRecords {
			t.Fatalf("cut %d: recovered %d records, want %d (longest valid prefix)", cut, got, wantRecords)
		}
		// The recovered prefix is intact byte for byte.
		for i, e := range j.Completed() {
			if e.Idx != i || !bytes.Equal(e.Data, payloads[i]) {
				t.Fatalf("cut %d: entry %d = (%d, %q), want (%d, %q)", cut, i, e.Idx, e.Data, i, payloads[i])
			}
		}
		// The log stays appendable from a clean boundary...
		if err := j.Record(100+cut, []byte("post-tear")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		// ...and a second recovery sees the prefix plus the new record.
		j2, err := Open(path, Options{SyncInterval: -1, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if got := j2.Recovered(); got != wantRecords+1 {
			t.Fatalf("cut %d: second recovery found %d records, want %d", cut, got, wantRecords+1)
		}
		entries := j2.Completed()
		last := entries[len(entries)-1]
		if last.Idx != 100+cut || string(last.Data) != "post-tear" {
			t.Fatalf("cut %d: appended record came back as (%d, %q)", cut, last.Idx, last.Data)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		os.Remove(path)
	}
}

// TestTornTailEveryOffsetWithGarbage repeats the sweep with the truncated
// tail replaced by garbage of the same length (a misdirected or shredded
// write rather than a short one): recovery must still stop at the last
// intact record and never mistake garbage for data.
func TestTornTailEveryOffsetWithGarbage(t *testing.T) {
	dir := t.TempDir()
	data, ends, _ := buildTornFixture(t, filepath.Join(dir, "fixture.log"))

	// A deterministic non-record byte pattern. 0xA7 (the record magic) is
	// included so resync-on-magic alone cannot pass; the CRC must reject.
	garbage := func(n int) []byte {
		g := make([]byte, n)
		for i := range g {
			g[i] = byte((i*131 + 7) ^ 0xA7)
		}
		return g
	}

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("g%d.log", cut))
		torn := append(append([]byte(nil), data[:cut]...), garbage(len(data)-cut+3)...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(path, Options{SyncInterval: -1, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		// Garbage may happen to extend the last partial record into a
		// valid-looking one only if its CRC matches — effectively never;
		// recovery must land exactly on the intact prefix.
		if got, want := j.Recovered(), recordsThatFit(ends, cut); got != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, want)
		}
		if err := j.Record(999, []byte("alive")); err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		os.Remove(path)
	}
}
