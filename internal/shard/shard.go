// Package shard partitions one input stream across N cooperating master
// shards so coordination itself scales horizontally: each shard owns
// contiguous index ranges (chunks) of the global stream, runs its own
// DistributedMap engine (a master.Master), records completions in its
// own journal segment, and leases workers independently from the shared
// fleet pool as its own fleet.Job with Backlog-driven demand. A thin
// coordinator routes input chunks to their owners, and a Merger restores
// global output order from the per-shard ordered substreams with
// O(window) buffering.
//
// Fault model: a shard master's death (every session severed, or zero
// live workers for DeadAfter with work pending) is recovered by RANGE
// MIGRATION, not whole-job restart. The dead shard's segment is copied
// (valid prefix only) to a fresh epoch file; a sibling member adopts the
// slot, is pre-fed every routed-but-unemitted value of the range in
// ascending global order, and restores the copy's completed entries
// through the lender — so finished work is replayed, unfinished work is
// recomputed, and the segment's per-index dedup plus the merger's
// emission cursor make the hand-off exactly-once end to end.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pando/internal/fleet"
	"pando/internal/journal"
	"pando/internal/lender"
	"pando/internal/master"
	"pando/internal/pullstream"
	"pando/internal/transport"
)

// Defaults for unset Config fields.
const (
	DefaultChunk  = 64
	DefaultWindow = 1024
)

// Config parameterizes a Group.
type Config struct {
	// Shards is the number of cooperating masters (N slots).
	Shards int
	// Chunk is the length of one contiguous index range: chunk b, the
	// half-open range [b*Chunk, (b+1)*Chunk), is owned by slot b mod N.
	Chunk int
	// Window bounds the merger's reorder buffer (results held ahead of
	// the global emission cursor).
	Window int
	// Dir is the directory holding the per-shard journal segments. It
	// must exist; the group does not remove segments on Close.
	Dir string
	// Base names the segment files (Dir/Base.shardNN.eE.seg); defaults
	// to Master.FuncName.
	Base string
	// DeadAfter, when > 0 with a pool attached, turns on the liveness
	// watcher: a shard that has served workers before, has work pending,
	// and holds zero live sessions for this long is declared dead and
	// its range migrated.
	DeadAfter time.Duration
	// Master is the per-shard engine template. Ordered is forced on;
	// Group, Journal, Spill, ResultHook and RestoreEntries must be
	// unset (the group owns per-shard durability and ordering itself).
	Master master.Config
}

// Group is one sharded deployment: N slots, their current owning
// members, and the merge layer.
type Group[I, O any] struct {
	cfg    Config
	pool   *fleet.Pool
	in     transport.Codec[I]
	out    transport.Codec[O]
	merger *Merger[O]

	mu        sync.Mutex
	cond      *sync.Cond // owner changes and close, for rerouting waits
	owners    []*member[I, O]
	all       []*member[I, O]
	pending   map[int]I    // routed, not yet emitted — the migration refeed set
	granted   map[int]bool // pending values preloaded into an adopting member
	nextG     int
	inputDone bool
	bound     bool
	closed    bool

	migMu       sync.Mutex // serializes migrations
	watcherStop chan struct{}
}

// member is one shard master: an engine bound to its range feed, its
// completion segment, and its local→global index map.
type member[I, O any] struct {
	g            *Group[I, O]
	shard, epoch int
	m            *master.Master[I, O]
	job          fleet.Job
	feed         *lender.RangeFeed[I]
	idx          *lender.IndexMap
	seg          *journal.Segment

	mu        sync.Mutex
	lo, hi    int // bounds of globals routed here (half-open; 0,0 before any)
	routedAny bool
	items     int
	wasLive   bool // has ever held a live worker (arms the death watch)
	dead      bool
	migrated  bool
	started   bool
}

// New creates a sharded group leasing workers from pool (nil for
// direct-attachment use: Attach works, Kill/migration and the liveness
// watcher need a pool).
func New[I, O any](pool *fleet.Pool, cfg Config, in transport.Codec[I], out transport.Codec[O]) (*Group[I, O], error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards = %d, need >= 1", cfg.Shards)
	}
	if cfg.Master.Group > 1 {
		return nil, errors.New("shard: grouped engines are not supported under sharding")
	}
	if cfg.Master.Journal != nil || cfg.Master.Spill != nil || cfg.Master.ResultHook != nil || len(cfg.Master.RestoreEntries) > 0 {
		return nil, errors.New("shard: per-shard durability is owned by the group; clear Journal/Spill/ResultHook/RestoreEntries")
	}
	if cfg.Dir == "" {
		return nil, errors.New("shard: Config.Dir required (segment directory)")
	}
	cfg.Master.Ordered = true
	if cfg.Chunk < 1 {
		cfg.Chunk = DefaultChunk
	}
	if cfg.Window < 1 {
		cfg.Window = DefaultWindow
	}
	if cfg.Base == "" {
		cfg.Base = cfg.Master.FuncName
	}
	g := &Group[I, O]{
		cfg:     cfg,
		pool:    pool,
		in:      in,
		out:     out,
		merger:  NewMerger[O](cfg.Window),
		owners:  make([]*member[I, O], cfg.Shards),
		pending: make(map[int]I),
		granted: make(map[int]bool),
	}
	g.cond = sync.NewCond(&g.mu)
	g.merger.OnEmit(func(global int) {
		g.mu.Lock()
		delete(g.pending, global)
		delete(g.granted, global)
		g.mu.Unlock()
	})
	for b := range g.owners {
		mb, err := g.newMember(b, 0, nil, nil)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.owners[b] = mb
	}
	return g, nil
}

// newMember builds one shard master at the given slot and epoch,
// optionally adopting a hand-off: preload is the granted refeed (in
// ascending global order) and restore the copied segment's completed
// entries mapped to the local indices the new engine will assign.
func (g *Group[I, O]) newMember(shard, epoch int, restore []journal.Entry, preload []lender.FeedItem[I]) (*member[I, O], error) {
	seg, err := journal.OpenSegment(journal.SegmentPath(g.cfg.Dir, g.cfg.Base, shard, epoch))
	if err != nil {
		return nil, err
	}
	mb := &member[I, O]{g: g, shard: shard, epoch: epoch, seg: seg, idx: &lender.IndexMap{}}
	mb.feed = lender.NewRangeFeed[I](g.cfg.Chunk, mb.idx)
	if len(preload) > 0 {
		mb.feed.Preload(preload)
		mb.lo, mb.hi = preload[0].Global, preload[len(preload)-1].Global+1
		mb.routedAny = true
	}
	mcfg := g.cfg.Master
	mcfg.RestoreEntries = restore
	mcfg.ResultHook = mb.record
	mb.m = master.NewJob[I, O](mcfg, g.in, g.out)
	mb.job = mb.m.Job()
	if g.pool != nil {
		if err := g.pool.Register(mb.job); err != nil {
			seg.Close()
			return nil, err
		}
	}
	g.mu.Lock()
	g.all = append(g.all, mb)
	bound := g.bound
	g.mu.Unlock()
	if bound {
		mb.start()
	}
	return mb, nil
}

// record is the engine's ResultHook: translate the engine-local index to
// its global one and append to the shard's segment. It fires before the
// result can reach the merge layer, so every emitted result is already
// durable in some shard's segment.
func (mb *member[I, O]) record(local int, data []byte) {
	if global, ok := mb.idx.Global(local); ok {
		_ = mb.seg.Record(global, data)
	}
}

// start binds the engine to its feed and launches the drainer. Idempotent.
func (mb *member[I, O]) start() {
	mb.mu.Lock()
	if mb.started {
		mb.mu.Unlock()
		return
	}
	mb.started = true
	mb.mu.Unlock()
	out := mb.m.Bind(mb.feed.Source())
	go mb.drain(out)
}

// errMigrated aborts a dead member's engine output: its fleet is
// severed, so the results the output is parked on can never arrive.
// errClosed does the same for every member at Group.Close.
var (
	errMigrated = errors.New("shard: member migrated")
	errClosed   = errors.New("shard: group closed")
)

// drain pumps the shard's ordered local output into the merger,
// translating local indices back to global ones. A migrated member's
// engine output is aborted with errMigrated, which brings the drain
// goroutine home instead of leaving it parked on results the severed
// fleet will never deliver.
func (mb *member[I, O]) drain(out pullstream.Source[O]) {
	local := 0
	err := pullstream.Drain(out, func(v O) error {
		global, ok := mb.idx.Global(local)
		if !ok {
			return fmt.Errorf("shard %d.e%d: local result %d has no global index", mb.shard, mb.epoch, local)
		}
		local++
		mb.g.merger.Insert(global, v)
		mb.mu.Lock()
		mb.items++
		mb.mu.Unlock()
		return nil
	})
	if err != nil && !mb.isGone() && !mb.g.isClosed() {
		mb.g.merger.Fail(err)
	}
}

func (g *Group[I, O]) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

func (mb *member[I, O]) isGone() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.dead || mb.migrated
}

func (mb *member[I, O]) noteRouted(global int) {
	mb.mu.Lock()
	if !mb.routedAny {
		mb.lo, mb.routedAny = global, true
	}
	if global+1 > mb.hi {
		mb.hi = global + 1
	}
	mb.mu.Unlock()
}

// slot maps a global index to its home slot: chunk b belongs to slot
// b mod N, so each slot owns an infinite striped set of contiguous
// ranges.
func (g *Group[I, O]) slot(global int) int {
	return (global / g.cfg.Chunk) % g.cfg.Shards
}

// Bind attaches the global input stream and returns the globally ordered
// output stream. Call once.
func (g *Group[I, O]) Bind(src pullstream.Source[I]) pullstream.Source[O] {
	g.mu.Lock()
	g.bound = true
	members := g.liveOwnersLocked()
	startWatcher := g.cfg.DeadAfter > 0 && g.pool != nil && g.watcherStop == nil
	if startWatcher {
		g.watcherStop = make(chan struct{})
	}
	g.mu.Unlock()
	for _, mb := range members {
		mb.start()
	}
	if startWatcher {
		go g.watch()
	}
	go g.route(src)
	return g.merger.Source()
}

// liveOwnersLocked returns the distinct current owners. Caller holds g.mu.
func (g *Group[I, O]) liveOwnersLocked() []*member[I, O] {
	seen := make(map[*member[I, O]]bool, len(g.owners))
	out := make([]*member[I, O], 0, len(g.owners))
	for _, mb := range g.owners {
		if mb != nil && !seen[mb] {
			seen[mb] = true
			out = append(out, mb)
		}
	}
	return out
}

// route is the coordinator's splitter: it pulls the global input one
// value at a time (laziness is preserved — run-ahead is bounded by the
// feeds' capacity plus the merger window), retains each value for
// possible migration refeed, and hands it to its slot's current owner.
func (g *Group[I, O]) route(src pullstream.Source[I]) {
	for {
		v, end := pullOne(src)
		if end != nil {
			if pullstream.IsNormalEnd(end) {
				g.finishInput()
			} else {
				g.merger.Fail(end)
			}
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return
		}
		global := g.nextG
		g.nextG++
		g.pending[global] = v
		g.mu.Unlock()
		g.deliver(global, v)
	}
}

// pullOne issues one request against src and blocks for the answer.
func pullOne[T any](src pullstream.Source[T]) (T, error) {
	type answer struct {
		v   T
		end error
	}
	ch := make(chan answer, 1)
	src(nil, func(end error, v T) { ch <- answer{v: v, end: end} })
	a := <-ch
	return a.v, a.end
}

// deliver routes one value to its slot's current owner, riding out
// owner deaths: a Push refused by a closed feed waits for the migration
// to install a successor (or to grant the value to the adopter's
// preload) and retries.
func (g *Group[I, O]) deliver(global int, v I) {
	slot := g.slot(global)
	for {
		g.mu.Lock()
		if g.closed || g.granted[global] {
			g.mu.Unlock()
			return
		}
		owner := g.owners[slot]
		g.mu.Unlock()
		if owner.feed.Push(global, v) == nil {
			owner.noteRouted(global)
			return
		}
		g.mu.Lock()
		for !g.closed && g.owners[slot] == owner && !g.granted[global] {
			g.cond.Wait()
		}
		g.mu.Unlock()
	}
}

// finishInput marks the stream's end: feeds drain and close, and the
// merger learns the total so the output can terminate.
func (g *Group[I, O]) finishInput() {
	g.mu.Lock()
	g.inputDone = true
	total := g.nextG
	members := g.liveOwnersLocked()
	g.mu.Unlock()
	for _, mb := range members {
		mb.feed.Close(nil)
	}
	g.merger.SetTotal(total)
}

// Attach wires an already-admitted channel straight into one slot's
// current engine, bypassing the pool — the direct-attachment path used
// by benchmarks and embedded tests.
func (g *Group[I, O]) Attach(slot int, name string, ch transport.Channel) {
	g.mu.Lock()
	mb := g.owners[((slot%len(g.owners))+len(g.owners))%len(g.owners)]
	g.mu.Unlock()
	mb.m.Attach(name, ch)
}

// Kill crash-stops the current owner of slot — every session leased to
// it is severed, as if the shard master's process died — and migrates
// its ranges to an adopting sibling. It is the chaos entry point.
func (g *Group[I, O]) Kill(slot int) error {
	mb, err := g.ownerOf(slot)
	if err != nil {
		return err
	}
	if g.pool != nil {
		g.pool.SeverJob(mb.job)
	}
	return g.migrate(mb, true)
}

// Migrate hands the ranges owned by slot's current member to a fresh
// adopting member without severing workers first — the voluntary
// overload hand-off. The old member's leases are reclaimed by the pool
// as its job unregisters.
func (g *Group[I, O]) Migrate(slot int) error {
	mb, err := g.ownerOf(slot)
	if err != nil {
		return err
	}
	return g.migrate(mb, false)
}

func (g *Group[I, O]) ownerOf(slot int) (*member[I, O], error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if slot < 0 || slot >= len(g.owners) {
		return nil, fmt.Errorf("shard: slot %d out of range [0,%d)", slot, len(g.owners))
	}
	return g.owners[slot], nil
}

// migrate is the range hand-off: stop the dead member, copy its
// segment's valid prefix to the next epoch, grant every
// routed-but-unemitted value of its slots to a fresh adopting member
// (restoring the copy's completed entries through the lender), and
// switch ownership. Serialized; a member already migrated is a no-op.
func (g *Group[I, O]) migrate(dead *member[I, O], killed bool) error {
	g.migMu.Lock()
	defer g.migMu.Unlock()
	g.mu.Lock()
	if g.closed || dead.isGone() {
		g.mu.Unlock()
		return nil
	}
	g.mu.Unlock()
	dead.mu.Lock()
	dead.migrated = true
	dead.dead = killed
	dead.mu.Unlock()

	// Stop the dead engine: its feed discards (undelivered values travel
	// via the grant instead), its master refuses leases, and the pool
	// forgets the job. A Kill severed the sessions already; a voluntary
	// migration lets the pool reclaim and reroute them.
	dead.feed.CloseDiscard(pullstream.ErrAborted)
	dead.m.Close()
	dead.m.Abort(errMigrated)
	if g.pool != nil {
		g.pool.SeverJob(dead.job)
		g.pool.Unregister(dead.job)
	}

	// Durability barrier, then the hand-off copy: only the valid record
	// prefix travels; a torn tail (the crash that triggered us) is
	// dropped and its results recomputed.
	_ = dead.seg.Close()
	copyPath := journal.SegmentPath(g.cfg.Dir, g.cfg.Base, dead.shard, dead.epoch+1)
	if _, err := journal.CopySegment(dead.seg.Path(), copyPath); err != nil {
		return fmt.Errorf("shard: migrate shard %d: %w", dead.shard, err)
	}
	entries, err := journal.ReadSegment(copyPath)
	if err != nil {
		return fmt.Errorf("shard: migrate shard %d: %w", dead.shard, err)
	}
	completed := make(map[int][]byte, len(entries))
	for _, e := range entries {
		completed[e.Idx] = e.Data
	}

	// Grant: every routed-but-unemitted global of the dead member's
	// slots, refed in ascending global order. The adopting engine
	// assigns locals in exactly that order, which fixes the local
	// indices of the restored (already-completed) entries up front.
	g.mu.Lock()
	var grant []int
	for global := range g.pending {
		if g.owners[g.slot(global)] == dead {
			grant = append(grant, global)
		}
	}
	sort.Ints(grant)
	preload := make([]lender.FeedItem[I], len(grant))
	for i, global := range grant {
		preload[i] = lender.FeedItem[I]{Global: global, Value: g.pending[global]}
		g.granted[global] = true
	}
	g.mu.Unlock()
	var restore []journal.Entry
	for pos, global := range grant {
		if data, ok := completed[global]; ok {
			restore = append(restore, journal.Entry{Idx: pos, Data: data})
		}
	}

	adopted, err := g.newMember(dead.shard, dead.epoch+1, restore, preload)
	if err != nil {
		return fmt.Errorf("shard: migrate shard %d: %w", dead.shard, err)
	}
	g.mu.Lock()
	for s, mb := range g.owners {
		if mb == dead {
			g.owners[s] = adopted
		}
	}
	// Read inputDone only after the ownership switch: finishInput sets it
	// and then closes the feeds of the owners it snapshots, so whichever
	// side runs second sees the other's work and the adopted feed is
	// closed on every interleaving (feed.Close is idempotent).
	inputDone := g.inputDone
	g.mu.Unlock()
	g.cond.Broadcast()
	if inputDone {
		adopted.feed.Close(nil)
	}
	return nil
}

// watch is the coordinator's death detector: a member that has held live
// workers before, has work pending, and reads zero live sessions for
// DeadAfter in a row is declared dead and migrated.
func (g *Group[I, O]) watch() {
	interval := g.cfg.DeadAfter / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	zeroSince := make(map[*member[I, O]]time.Time)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.watcherStop:
			return
		case <-t.C:
		}
		g.mu.Lock()
		members := g.liveOwnersLocked()
		g.mu.Unlock()
		now := time.Now()
		for _, mb := range members {
			live := mb.m.LiveWorkers()
			if live > 0 {
				mb.mu.Lock()
				mb.wasLive = true
				mb.mu.Unlock()
				delete(zeroSince, mb)
				continue
			}
			mb.mu.Lock()
			armed := mb.wasLive && !mb.dead && !mb.migrated
			mb.mu.Unlock()
			if !armed || mb.job.Demand() == 0 {
				delete(zeroSince, mb)
				continue
			}
			since, ok := zeroSince[mb]
			if !ok {
				zeroSince[mb] = now
				continue
			}
			if now.Sub(since) >= g.cfg.DeadAfter {
				delete(zeroSince, mb)
				_ = g.migrate(mb, true)
			}
		}
	}
}

// Stats snapshots every member's row — live owners and their migrated or
// dead predecessors — for the front master's /stats aggregation and the
// reporter.
func (g *Group[I, O]) Stats() []master.ShardStats {
	g.mu.Lock()
	all := append([]*member[I, O](nil), g.all...)
	owners := append([]*member[I, O](nil), g.owners...)
	g.mu.Unlock()
	// Per-member merge depth: buffered globals held on each owner's
	// behalf.
	depth := make(map[*member[I, O]]int)
	for _, global := range g.merger.Buffered() {
		if s := g.slot(global); s < len(owners) {
			depth[owners[s]]++
		}
	}
	out := make([]master.ShardStats, 0, len(all))
	for _, mb := range all {
		outstanding, failed, _, _ := mb.m.LenderStats()
		mb.mu.Lock()
		out = append(out, master.ShardStats{
			Shard:       mb.shard,
			Epoch:       mb.epoch,
			Lo:          mb.lo,
			Hi:          mb.hi,
			Outstanding: outstanding,
			Failed:      failed,
			MergeDepth:  depth[mb],
			LiveWorkers: mb.m.LiveWorkers(),
			Items:       mb.items,
			Migrated:    mb.migrated,
			Dead:        mb.dead,
		})
		mb.mu.Unlock()
	}
	return out
}

// Front returns slot 0's current master — the group's face for HTTP
// info/stats serving. Install the group's Stats provider on it with
// Front().SetShardStats(g.Stats).
func (g *Group[I, O]) Front() *master.Master[I, O] {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.owners[0].m
}

// MergeDepth reports the merger's current reorder-buffer depth.
func (g *Group[I, O]) MergeDepth() int { return g.merger.Depth() }

// WorkerStats concatenates every member's per-device accounting — the
// group-wide view a single master's Stats would give.
func (g *Group[I, O]) WorkerStats() []master.WorkerStats {
	g.mu.Lock()
	all := append([]*member[I, O](nil), g.all...)
	g.mu.Unlock()
	var out []master.WorkerStats
	for _, mb := range all {
		out = append(out, mb.m.Stats()...)
	}
	return out
}

// TotalItems sums the results received from devices across every member,
// including work a migration redid.
func (g *Group[I, O]) TotalItems() int {
	g.mu.Lock()
	all := append([]*member[I, O](nil), g.all...)
	g.mu.Unlock()
	total := 0
	for _, mb := range all {
		total += mb.m.TotalItems()
	}
	return total
}

// Close shuts every member down. Segments stay on disk (they are the
// run's durable record); remove Dir explicitly when no longer needed.
func (g *Group[I, O]) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	all := append([]*member[I, O](nil), g.all...)
	stop := g.watcherStop
	g.mu.Unlock()
	g.cond.Broadcast()
	if stop != nil {
		close(stop)
	}
	for _, mb := range all {
		mb.feed.CloseDiscard(pullstream.ErrAborted)
		mb.m.Close()
		// A member whose engine output is still parked on an in-flight
		// result (its drain goroutine is mid-pull) would never see the
		// discarded feed's end; fail the output so every drain comes home.
		mb.m.Abort(errClosed)
		if g.pool != nil {
			g.pool.Unregister(mb.job)
		}
		_ = mb.seg.Close()
	}
}
