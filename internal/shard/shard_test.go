package shard

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"pando/internal/fleet"
	"pando/internal/journal"
	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

func jsonSquare(b []byte) ([]byte, error) {
	var v int
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return json.Marshal(v * v)
}

func newTestPool(t *testing.T) (*fleet.Pool, *netsim.Listener) {
	t.Helper()
	pool := fleet.NewPool(fleet.Config{
		Channel:   transport.Config{HeartbeatInterval: 25 * time.Millisecond},
		Rebalance: 10 * time.Millisecond,
	})
	ln := netsim.NewListener("pool", netsim.Loopback)
	go pool.ServeWS(ln)
	t.Cleanup(func() { ln.Close(); pool.Close() })
	return pool, ln
}

func newTestGroup(t *testing.T, pool *fleet.Pool, shards, chunk, window int, deadAfter time.Duration) (*Group[int, int], string) {
	t.Helper()
	dir := t.TempDir()
	g, err := New[int, int](pool, Config{
		Shards:    shards,
		Chunk:     chunk,
		Window:    window,
		Dir:       dir,
		DeadAfter: deadAfter,
		Master: master.Config{
			FuncName: "square",
			Batch:    2,
			Channel:  transport.Config{HeartbeatInterval: 25 * time.Millisecond},
		},
	}, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g, dir
}

func joinVolunteer(t *testing.T, ln *netsim.Listener, v *worker.Volunteer) *netsim.Pipe {
	t.Helper()
	conn, pipe, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if v.Channel.HeartbeatInterval == 0 {
		v.Channel.HeartbeatInterval = 25 * time.Millisecond
	}
	if v.CrashAfter == 0 {
		v.CrashAfter = -1
	}
	if v.Handler == nil {
		v.Handler = jsonSquare
	}
	if len(v.Functions) == 0 {
		v.Functions = []string{"*"}
	}
	go v.JoinWS(conn)
	return pipe
}

func wantSquares(t *testing.T, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if want := (i + 1) * (i + 1); v != want {
			t.Fatalf("result %d = %d, want %d", i, v, want)
		}
	}
}

// TestShardOrderedOutputAcrossShards: the canonical sharded run — the
// stream is striped across two shard masters leasing from one pool, and
// the merged output is the globally ordered result, with every index
// durable in exactly one shard's segment.
func TestShardOrderedOutputAcrossShards(t *testing.T) {
	pool, ln := newTestPool(t)
	g, dir := newTestGroup(t, pool, 2, 4, 64, 0)

	out := g.Bind(pullstream.Count(100))
	for i := 0; i < 4; i++ {
		joinVolunteer(t, ln, &worker.Volunteer{Name: fmt.Sprintf("w%d", i)})
	}
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	wantSquares(t, got, 100)

	stats := g.Stats()
	if len(stats) != 2 {
		t.Fatalf("Stats rows = %d, want 2", len(stats))
	}
	items := 0
	for _, s := range stats {
		items += s.Items
		if s.Migrated || s.Dead {
			t.Fatalf("unexpected migrated/dead row: %+v", s)
		}
	}
	if items != 100 {
		t.Fatalf("summed shard items = %d, want 100", items)
	}

	g.Close() // flush the segments before reading them back

	// Union of the per-shard segments covers the full index space with
	// no overlap.
	seen := make(map[int]bool)
	for b := 0; b < 2; b++ {
		entries, err := journal.ReadSegment(journal.SegmentPath(dir, "square", b, 0))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if seen[e.Idx] {
				t.Fatalf("index %d recorded in both segments", e.Idx)
			}
			seen[e.Idx] = true
			if slot := (e.Idx / 4) % 2; slot != b {
				t.Fatalf("index %d in segment %d, belongs to slot %d", e.Idx, b, slot)
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("segments hold %d indices, want 100", len(seen))
	}
}

// TestShardKillMigratesRange: killing one shard master mid-stream (its
// sessions severed, crash-stop) must not lose or duplicate anything —
// the adopting member restores the segment copy, recomputes the rest,
// and the merged output is still the exact ordered sequence.
func TestShardKillMigratesRange(t *testing.T) {
	pool, ln := newTestPool(t)
	g, dir := newTestGroup(t, pool, 2, 4, 16, 0)

	const n = 300
	out := g.Bind(pullstream.Count(n))
	for i := 0; i < 4; i++ {
		joinVolunteer(t, ln, &worker.Volunteer{Name: fmt.Sprintf("w%d", i), Delay: time.Millisecond})
	}

	var got []int
	killed := false
	err := pullstream.Drain(out, func(v int) error {
		got = append(got, v)
		if len(got) == 50 && !killed {
			killed = true
			if err := g.Kill(1); err != nil {
				return err
			}
			// Replacement capacity for the severed sessions.
			joinVolunteer(t, ln, &worker.Volunteer{Name: "fresh-a", Delay: time.Millisecond})
			joinVolunteer(t, ln, &worker.Volunteer{Name: "fresh-b", Delay: time.Millisecond})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSquares(t, got, n)

	var sawMigrated, sawAdopted bool
	for _, s := range g.Stats() {
		if s.Shard == 1 && s.Migrated {
			sawMigrated = true
		}
		if s.Shard == 1 && s.Epoch == 1 && !s.Migrated {
			sawAdopted = true
		}
	}
	if !sawMigrated || !sawAdopted {
		t.Fatalf("stats missing migration lineage: %+v", g.Stats())
	}
	g.Close() // flush the adopted segment before reading it back
	// The hand-off left both epochs' segments on disk; the adopted one
	// carries the slot's full completion set.
	entries, err := journal.ReadSegment(journal.SegmentPath(dir, "square", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	adopted := make(map[int]bool, len(entries))
	for _, e := range entries {
		adopted[e.Idx] = true
	}
	missing := 0
	for idx := 0; idx < n; idx++ {
		if (idx/4)%2 == 1 && !adopted[idx] {
			missing++
		}
	}
	// Indices emitted before the kill may predate the copy; everything
	// granted after it must be present. Tolerate only the pre-kill
	// window.
	if missing > 50 {
		t.Fatalf("adopted segment missing %d slot-1 indices", missing)
	}
}

// TestShardDeathWatcherMigrates: when every worker of a shard dies and
// none return, the coordinator's liveness watch must declare the shard
// dead and migrate its range without an explicit Kill.
func TestShardDeathWatcherMigrates(t *testing.T) {
	pool, ln := newTestPool(t)
	g, _ := newTestGroup(t, pool, 1, 4, 16, 60*time.Millisecond)

	const n = 60
	out := g.Bind(pullstream.Count(n))
	// The only worker crash-stops after 20 items and never rejoins.
	joinVolunteer(t, ln, &worker.Volunteer{Name: "doomed", CrashAfter: 20, Delay: 2 * time.Millisecond})

	type result struct {
		got []int
		err error
	}
	done := make(chan result, 1)
	go func() {
		got, err := pullstream.Collect(out)
		done <- result{got, err}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		migrated := false
		for _, s := range g.Stats() {
			if s.Migrated {
				migrated = true
			}
		}
		if migrated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("death watcher never migrated: %+v", g.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	joinVolunteer(t, ln, &worker.Volunteer{Name: "relief-a"})
	joinVolunteer(t, ln, &worker.Volunteer{Name: "relief-b"})

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		wantSquares(t, r.got, n)
	case <-time.After(15 * time.Second):
		t.Fatalf("stream never completed after migration: %+v", g.Stats())
	}
}

// TestMergerOrderAndDedup drives the merge layer directly: out-of-order
// inserts emit in global order, an index below the cursor is dropped
// (exactly-once across migration replays), and the stream ends at the
// total.
func TestMergerOrderAndDedup(t *testing.T) {
	m := NewMerger[int](4)
	m.SetTotal(3)
	src := m.Source()

	m.Insert(0, 10)
	if v, end := pullOne(src); end != nil || v != 10 {
		t.Fatalf("emit 0 = (%d, %v)", v, end)
	}
	// Below the cursor now: a migration replay of an already-emitted
	// result must vanish.
	m.Insert(0, 999)
	m.Insert(2, 30)
	m.Insert(1, 20)
	m.Insert(1, 20) // idempotent overwrite while buffered
	if v, end := pullOne(src); end != nil || v != 20 {
		t.Fatalf("emit 1 = (%d, %v)", v, end)
	}
	if v, end := pullOne(src); end != nil || v != 30 {
		t.Fatalf("emit 2 = (%d, %v)", v, end)
	}
	if _, end := pullOne(src); end != pullstream.ErrDone {
		t.Fatalf("end = %v, want ErrDone", end)
	}
	if m.Depth() != 0 {
		t.Fatalf("Depth = %d after end", m.Depth())
	}
}

// TestMergerWindowBackpressure: an insert past the window blocks until
// the cursor advances — except the cursor value itself, which is always
// admitted (the deadlock-freedom rule).
func TestMergerWindowBackpressure(t *testing.T) {
	m := NewMerger[int](2)
	m.SetTotal(5)
	src := m.Source()

	m.Insert(1, 1)
	m.Insert(2, 2) // buffer full (cursor 0 missing)
	blocked := make(chan struct{})
	go func() {
		m.Insert(3, 3) // must block: beyond cursor, window full
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("insert past a full window did not block")
	case <-time.After(50 * time.Millisecond):
	}
	m.Insert(0, 0) // cursor value: admitted despite the full window
	for want := 0; want <= 3; want++ {
		if v, end := pullOne(src); end != nil || v != want {
			t.Fatalf("emit %d = (%d, %v)", want, v, end)
		}
	}
	select {
	case <-blocked:
	case <-time.After(time.Second):
		t.Fatal("blocked insert never admitted after cursor advanced")
	}
	m.Insert(4, 4)
	if v, end := pullOne(src); end != nil || v != 4 {
		t.Fatalf("emit 4 = (%d, %v)", v, end)
	}
	if _, end := pullOne(src); end != pullstream.ErrDone {
		t.Fatalf("end = %v, want ErrDone", end)
	}
}
