package shard

import (
	"sync"

	"pando/internal/pullstream"
)

// Merger restores global output order from the per-shard ordered
// substreams with O(window) buffering. Each shard's drainer inserts
// (global index, result) pairs in ascending global order (its engine is
// ordered and its feed is routed in global arrival order); the merger
// holds at most `window` results ahead of the emission cursor and blocks
// any inserter that would exceed it — the backpressure that keeps an
// arbitrarily long sharded stream in bounded master memory, riding the
// same bound-and-block discipline as the lender's memory bound.
//
// Deadlock-freedom of the bound: the cursor's next value is always the
// minimal uninserted global, and the shard owning it inserts its globals
// ascending, so that shard's next insert IS the cursor value — which is
// always admitted regardless of buffer depth. Every other blocked
// inserter wakes as emissions advance the cursor.
type Merger[O any] struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      map[int]O
	cursor   int
	window   int
	total    int
	totalSet bool
	failed   error
	onEmit   func(global int)
	maxDepth int
}

// NewMerger creates a merger admitting at most window results ahead of
// the cursor.
func NewMerger[O any](window int) *Merger[O] {
	if window < 1 {
		window = 1
	}
	m := &Merger[O]{buf: make(map[int]O), window: window}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// OnEmit registers fn, invoked (outside the merger's lock) with each
// global index as it is emitted; the coordinator prunes its retained
// input there. Call before the first Insert.
func (m *Merger[O]) OnEmit(fn func(global int)) { m.onEmit = fn }

// SetTotal fixes the stream length: the source ends once the cursor
// reaches it.
func (m *Merger[O]) SetTotal(n int) {
	m.mu.Lock()
	m.total, m.totalSet = n, true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Fail poisons the merger: the source answers err and blocked inserters
// return.
func (m *Merger[O]) Fail(err error) {
	if err == nil {
		return
	}
	m.mu.Lock()
	if m.failed == nil {
		m.failed = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Insert offers one result. It blocks while the buffer is full — unless
// global IS the cursor, which is always admitted (see the deadlock note
// above). A global below the cursor (already emitted: a migration replay
// racing the original owner's drain) is dropped; re-inserting a buffered
// global overwrites idempotently.
func (m *Merger[O]) Insert(global int, v O) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.failed == nil && global > m.cursor {
		if _, dup := m.buf[global]; dup {
			break
		}
		if len(m.buf) < m.window {
			break
		}
		m.cond.Wait()
	}
	if m.failed != nil || global < m.cursor {
		return
	}
	m.buf[global] = v
	if len(m.buf) > m.maxDepth {
		m.maxDepth = len(m.buf)
	}
	m.cond.Broadcast()
}

// Depth reports how many results are buffered ahead of the cursor.
func (m *Merger[O]) Depth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}

// MaxDepth reports the high-water buffer depth over the merger's life.
func (m *Merger[O]) MaxDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxDepth
}

// Cursor reports the next global index to emit.
func (m *Merger[O]) Cursor() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cursor
}

// Buffered snapshots the buffered global indices (unordered).
func (m *Merger[O]) Buffered() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.buf))
	for g := range m.buf {
		out = append(out, g)
	}
	return out
}

// Source is the globally ordered output stream. Requests block until the
// cursor's value arrives; the stream ends when the cursor reaches the
// total (SetTotal) or fails when the merger is poisoned. Aborting the
// source poisons the merger so shard drainers unblock.
func (m *Merger[O]) Source() pullstream.Source[O] {
	return func(abort error, cb pullstream.Callback[O]) {
		var zero O
		if abort != nil {
			m.Fail(abort)
			cb(abort, zero)
			return
		}
		m.mu.Lock()
		for {
			if m.failed != nil {
				err := m.failed
				m.mu.Unlock()
				cb(err, zero)
				return
			}
			if v, ok := m.buf[m.cursor]; ok {
				g := m.cursor
				delete(m.buf, g)
				m.cursor++
				m.cond.Broadcast()
				onEmit := m.onEmit
				m.mu.Unlock()
				if onEmit != nil {
					onEmit(g)
				}
				cb(nil, v)
				return
			}
			if m.totalSet && m.cursor >= m.total {
				m.mu.Unlock()
				cb(pullstream.ErrDone, zero)
				return
			}
			m.cond.Wait()
		}
	}
}
