package ctxguard_test

import (
	"testing"

	"pando/internal/analysis/analysistest"
	"pando/internal/analysis/ctxguard"
)

func TestCtxguard(t *testing.T) {
	analysistest.Run(t, ctxguard.Analyzer, "ctxguardtest")
}
