// Package ctxguardtest seeds goroutine-cancellation violations (and
// their legitimate twins) for the ctxguard analyzer suite.
package ctxguardtest

import "context"

func work(ctx context.Context) error { return nil }

// nakedSend parks forever on a data channel after ctx is cancelled.
func nakedSend(ctx context.Context, out chan int) {
	go func() {
		out <- 1 // want `naked channel send in context-scoped goroutine`
	}()
}

// nakedRecv parks forever waiting for data nobody will send.
func nakedRecv(ctx context.Context, in chan int) {
	go func() {
		v := <-in // want `naked receive from a data channel in context-scoped goroutine`
		_ = v
	}()
}

// selectNoEscape can only leave when data arrives.
func selectNoEscape(ctx context.Context, in chan int) {
	go func() {
		select { // want `select in context-scoped goroutine has no default and no ctx.Done\(\)/done-channel case`
		case v := <-in:
			_ = v
		}
	}()
}

// guarded is the canonical shape: every blocking wait also watches
// ctx.Done().
func guarded(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

// buffered sends the single result into a capacity-1 channel: the
// handoff can never block.
func buffered(ctx context.Context) chan error {
	done := make(chan error, 1)
	go func() {
		done <- work(ctx)
	}()
	return done
}

// waitDone blocks on a cancellation-shaped channel, which is itself a
// wait-for-cancel.
func waitDone(ctx context.Context, done chan struct{}) {
	go func() {
		<-done
	}()
}

// noCtx has no context in scope; the goroutine's lifetime is the
// caller's problem by construction.
func noCtx(out chan int) {
	go func() {
		out <- 1
	}()
}

// allowed documents a deliberate unguarded send with its reason.
func allowed(ctx context.Context, out chan int) {
	go func() {
		//pando:allow ctxguard parent always drains one value before honoring cancellation
		out <- 1
	}()
}
