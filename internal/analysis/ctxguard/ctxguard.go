// Package ctxguard enforces the goroutine-leak discipline from the
// PR 1 Process fix: a goroutine spawned where a context.Context is in
// scope must remain cancellable on every blocking path. A goroutine
// that parks forever on a channel operation outlives the context it
// was spawned to serve — the leak class the chaos LeakGuard catches
// dynamically, checked here at build time.
//
// For each `go func() { ... }()` literal whose enclosing scope (or
// parameter list) carries a context.Context, every blocking channel
// operation in the body must be escapable:
//
//   - a select with a default case, or with a case receiving from
//     ctx.Done() or any cancellation-shaped channel (chan struct{}) is
//     fine;
//   - a naked receive from a cancellation-shaped channel is fine (it
//     is itself a wait-for-cancel);
//   - a naked send, or a naked receive from a data channel, or a
//     select whose every case can block on data, is flagged;
//   - a naked send to a channel made in the same file with a constant
//     non-zero capacity (`done := make(chan error, 1)`) is allowed: the
//     single-send result-handoff idiom never blocks. (Deliberately
//     may-miss: a second send to a full buffer would still block.)
//
// Goroutines spawned through a named function call are not analyzed
// (the callee is its own function, checked in its own right).
// Deliberate exceptions carry //pando:allow ctxguard <reason>.
package ctxguard

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"pando/internal/analysis"
)

// Analyzer is the ctxguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxguard",
	Doc: "check that goroutines spawned with a context.Context in scope select on " +
		"ctx.Done() (or a done-channel) on every blocking path",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		buffered := bufferedChans(info, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hasCtx := funcHasContext(info, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true
				}
				if !hasCtx && !litHasContext(info, lit) {
					return true
				}
				checkBody(pass, lit.Body, buffered)
				return true
			})
		}
	}
	return nil
}

// bufferedChans collects variables bound (by := or var) to
// make(chan T, n) with a constant n >= 1 anywhere in the file. Sends to
// them are treated as non-blocking result handoffs.
func bufferedChans(info *types.Info, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(name *ast.Ident, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return
		}
		if t := info.TypeOf(call); t == nil {
			return
		} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return
		}
		tv, ok := info.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return
		}
		if n, exact := constant.Int64Val(constant.ToInt(tv.Value)); !exact || n < 1 {
			return
		}
		if obj := info.Defs[name]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// funcHasContext reports whether the function declares a
// context.Context parameter.
func funcHasContext(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContext(t) {
			return true
		}
	}
	return false
}

// litHasContext reports whether the literal mentions any
// context.Context-typed value (a captured ctx or its own parameter).
func litHasContext(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := info.ObjectOf(id); obj != nil {
				if v, ok := obj.(*types.Var); ok && isContext(v.Type()) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isContext(t types.Type) bool {
	return analysis.NamedTypeIs(t, "context", "Context")
}

// checkBody flags unescapable blocking channel operations in a
// goroutine body. Nested literals are included (they run under the
// same lifetime obligation); nested go statements are skipped — each
// spawned body is judged on its own.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, buffered map[types.Object]bool) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !selectEscapable(info, n) {
				pass.Reportf(n.Pos(), "select in context-scoped goroutine has no default and no ctx.Done()/done-channel case: blocks past cancellation")
			}
			return true
		case *ast.SendStmt:
			if !insideSelect(body, n.Pos()) && !sendsToBuffered(info, n, buffered) {
				pass.Reportf(n.Arrow, "naked channel send in context-scoped goroutine: blocks past cancellation (select on ctx.Done() too)")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !insideSelect(body, n.Pos()) && !isCancellationChan(info, n.X) {
				pass.Reportf(n.OpPos, "naked receive from a data channel in context-scoped goroutine: blocks past cancellation (select on ctx.Done() too)")
			}
		}
		return true
	})
}

// selectEscapable reports whether the select has a default case or a
// receive from a cancellation-shaped channel (incl. ctx.Done()).
func selectEscapable(info *types.Info, s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recv = comm.Rhs[0]
			}
		}
		if recv == nil {
			continue
		}
		if u, ok := ast.Unparen(recv).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			if isCancellationChan(info, u.X) {
				return true
			}
		}
	}
	return false
}

// sendsToBuffered reports whether the send targets a known
// constant-capacity buffered channel (see bufferedChans).
func sendsToBuffered(info *types.Info, s *ast.SendStmt, buffered map[types.Object]bool) bool {
	id, ok := ast.Unparen(s.Chan).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	return obj != nil && buffered[obj]
}

// isCancellationChan reports whether e has type chan struct{} (or
// <-chan struct{}), the done-channel shape ctx.Done() shares.
func isCancellationChan(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// insideSelect reports whether pos falls inside any select statement's
// comm clauses within body (comm-clause operations are judged by the
// select rule, not the naked-op rule).
func insideSelect(body *ast.BlockStmt, pos token.Pos) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range s.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm != nil && cc.Comm.Pos() <= pos && pos <= cc.Comm.End() {
					inside = true
				}
			}
		}
		return !inside
	})
	return inside
}
