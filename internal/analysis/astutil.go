package analysis

import (
	"go/ast"
	"go/types"
)

// Shared type-query helpers for the analyzers.

// CalleeFunc resolves the called function or method of a call
// expression, or nil when the callee is not a named func (a func-typed
// variable, a conversion, a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgpath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgpath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	if fn.Signature().Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgpath
}

// NamedTypeIs reports whether t (after pointer unwrapping) is the named
// type pkgpath.name.
func NamedTypeIs(t types.Type, pkgpath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgpath
}

// ObjectOf resolves an identifier expression (through parens) to its
// variable object, or nil.
func ObjectOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	return v
}
