package bufown_test

import (
	"testing"

	"pando/internal/analysis/analysistest"
	"pando/internal/analysis/bufown"
)

func TestBufown(t *testing.T) {
	analysistest.Run(t, bufown.Analyzer, "bufowntest")
}
