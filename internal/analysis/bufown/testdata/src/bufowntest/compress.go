// Compression-path fixtures: the '/pando/2.2.0' codec moves every frame
// through arena buffers — a scratch v2 encoding that is compressed then
// recycled, a fresh buffer the inflater fills, a grow-in-place deflate
// sink — and each shape has a leak twin the analyzer must catch.
package bufowntest

import (
	"errors"
	"io"

	"pando/internal/proto"
)

var errShort = errors.New("short body")

// deflateInto mirrors the pooled deflate helper: it appends to dst and
// returns the grown buffer, so ownership stays with the caller.
func deflateInto(dst, src []byte) ([]byte, error) { return dst, nil }

// decodeLeakOnShortBody drops the freshly acquired inflate target when
// the body fails validation before the copy.
func decodeLeakOnShortBody(body []byte) ([]byte, error) {
	raw := proto.GetBuf(len(body)) // want `arena buffer "raw" is not released on every path`
	if len(body) < 5 {
		return nil, errShort
	}
	copy(raw, body)
	return raw, nil
}

// decodeCleanOnShortBody is the correct twin: the validation branch
// returns the buffer to the arena before bailing, the happy path
// transfers it to the caller.
func decodeCleanOnShortBody(body []byte) ([]byte, error) {
	raw := proto.GetBuf(len(body))
	if len(body) < 5 {
		proto.PutBuf(raw)
		return nil, errShort
	}
	copy(raw, body)
	return raw, nil
}

// deflateLeakOnSkip grows the sink through the reassignment pattern —
// which keeps ownership in b — then forgets it on the bail-out branch.
func deflateLeakOnSkip(src []byte, skip bool) {
	b := proto.GetBuf(0) // want `arena buffer "b" is not released on every path`
	var err error
	b, err = deflateInto(b, src)
	if err != nil || skip {
		return
	}
	proto.PutBuf(b)
}

// deflateClean is the correct twin: every path out of the function
// returns the grown sink to the arena.
func deflateClean(src []byte) {
	b := proto.GetBuf(0)
	var err error
	b, err = deflateInto(b, src)
	if err != nil {
		proto.PutBuf(b)
		return
	}
	proto.PutBuf(b)
}

// scratchUseAfterRecycle touches the scratch encoding after it went back
// to the arena — the bytes may already back another frame.
func scratchUseAfterRecycle() []byte {
	scratch := proto.GetBuf(16)
	proto.PutBuf(scratch)
	return append([]byte(nil), scratch...) // want `use of arena buffer "scratch" after release`
}

// writeFrameLeakOnOversize mirrors a buggy WriteFrame: the encoded frame
// leaks when the size cap rejects it before the write.
func writeFrameLeakOnOversize(w io.Writer, m *proto.Message, oversize bool) error {
	frame := proto.GetBuf(32) // want `arena buffer "frame" is not released on every path`
	if oversize {
		return errShort
	}
	_, err := w.Write(frame)
	proto.PutBuf(frame)
	return err
}

// writeFrameClean is the correct twin: the rejection branch recycles the
// frame before returning the error.
func writeFrameClean(w io.Writer, m *proto.Message, oversize bool) error {
	frame := proto.GetBuf(32)
	if oversize {
		proto.PutBuf(frame)
		return errShort
	}
	_, err := w.Write(frame)
	proto.PutBuf(frame)
	return err
}
