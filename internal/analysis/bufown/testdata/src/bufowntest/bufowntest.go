// Package bufowntest seeds arena-ownership violations (and their
// legitimate twins) for the bufown analyzer suite.
package bufowntest

import (
	"errors"

	"pando/internal/proto"
)

type conn struct{}

func (c *conn) Recv() (*proto.Message, error) { return nil, nil }
func (c *conn) Send(m *proto.Message) error   { return nil }
func deliver(m *proto.Message)                {}

// leakOnError drops the frame on the bad branch.
func leakOnError(c *conn, bad bool) error {
	m, err := c.Recv() // want `arena frame "m" is not released on every path`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("bad")
	}
	proto.Release(m)
	return nil
}

// useAfterRelease reads a field of a frame already back in the arena.
func useAfterRelease(c *conn) string {
	m, _ := c.Recv()
	proto.Release(m)
	return m.Peer // want `use of arena frame "m" after release`
}

// doubleRelease returns the same buffer twice.
func doubleRelease() {
	b := proto.GetBuf(64)
	proto.PutBuf(b)
	proto.PutBuf(b) // want `use of arena buffer "b" after release` `arena buffer "b" released twice on this path`
}

// discard loses the buffer to the garbage collector at acquisition.
func discard() {
	_ = proto.GetBuf(16) // want `arena buffer is discarded`
}

// loopLeak acquires a fresh frame every iteration and releases none.
func loopLeak(c *conn, n int) {
	for i := 0; i < n; i++ {
		m, err := c.Recv() // want `arena frame "m" is not released before the next loop iteration`
		if err != nil {
			return
		}
		m.Seq++
	}
}

// goroutineLeak: function literals are functions in their own right.
func goroutineLeak(c *conn) {
	go func() {
		m, err := c.Recv() // want `arena frame "m" is not released on every path`
		if err != nil {
			return
		}
		m.Seq++
	}()
}

// clean is the canonical correct shape: the err branch owns nothing (m
// is nil by the contract), the happy path copies then releases.
func clean(c *conn) (string, error) {
	m, err := c.Recv()
	if err != nil {
		return "", err
	}
	peer := m.Peer
	proto.Release(m)
	return peer, nil
}

// deferred release covers every exit.
func deferred(c *conn) string {
	m, _ := c.Recv()
	defer proto.Release(m)
	return m.Peer
}

// handoff transfers ownership over a channel; the receiver releases.
func handoff(c *conn, out chan<- *proto.Message) error {
	m, err := c.Recv()
	if err != nil {
		return err
	}
	out <- m
	return nil
}

// passed transfers ownership to a callee.
func passed(c *conn) error {
	m, err := c.Recv()
	if err != nil {
		return err
	}
	deliver(m)
	return nil
}

// appendLoop keeps ownership across buf, err = AppendFrame(buf, ...).
func appendLoop(ms []*proto.Message) {
	buf := proto.GetBuf(0)
	var err error
	for _, m := range ms {
		buf, err = proto.AppendFrame(buf, m)
		if err != nil {
			break
		}
	}
	proto.PutBuf(buf)
}

// allowed leaks deliberately, with the mandatory reason on record.
func allowed(c *conn) {
	//pando:allow bufown fixture pins the frame for the process lifetime
	m, _ := c.Recv()
	m.Seq++
}
