// Package proto is a typecheck-only stub of the real frame arena: it
// shadows pando/internal/proto inside the analysistest import tree so
// ownership fixtures compile without the codec. Only the names and
// shapes bufown keys on exist; every body is inert.
package proto

import "io"

// Message mirrors the envelope fields the fixtures touch.
type Message struct {
	Type, Peer, Err string
	Seq             uint64
	Data            []byte

	buf []byte
}

// Detach mirrors the ownership-escape hatch.
func (m *Message) Detach() []byte {
	b := m.buf
	m.buf = nil
	return b
}

// GetBuf mirrors the arena buffer acquisition.
func GetBuf(n int) []byte { return make([]byte, n) }

// PutBuf mirrors the arena buffer release.
func PutBuf(b []byte) {}

// GetMessage mirrors the pooled envelope acquisition.
func GetMessage() *Message { return &Message{} }

// ReadFrame mirrors the decode-side acquisition.
func ReadFrame(r io.Reader) (*Message, error) { return &Message{}, nil }

// Release mirrors the pooled envelope release.
func Release(m *Message) {}

// AppendFrame mirrors the encode-into-owned-buffer call.
func AppendFrame(dst []byte, m *Message) ([]byte, error) { return dst, nil }
