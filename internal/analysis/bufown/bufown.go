// Package bufown enforces the frame-arena ownership protocol of
// internal/proto (see the "Ownership rules" comment in proto/pool.go):
// every arena buffer acquired in a function — a []byte from
// proto.GetBuf or a *proto.Message from proto.ReadFrame,
// proto.GetMessage, or a Channel's Recv — must reach exactly one
// consumption point on every path out of the acquiring scope:
//
//   - an explicit proto.PutBuf / proto.Release, or
//   - an ownership transfer: returned to the caller, sent on a
//     channel, stored into a field/element, captured by a closure, or
//     passed as an argument to another function (SendAll, AppendFrame,
//     a lease's deliver, a reply queue's enqueue, ...).
//
// After an explicit release the value must not be touched again, and a
// second release on the same path is an error. The analysis is
// function-local and deliberately may-miss: once ownership transfers
// it stops tracking, so it never second-guesses a callee — but a value
// that provably reaches a return, a loop iteration end, or a
// re-acquisition while still owned is a leak back into the garbage
// collector instead of the arena, the exact class the zero-alloc hot
// path exists to eliminate.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"

	"pando/internal/analysis"
)

const protoPath = "pando/internal/proto"

// Analyzer is the bufown analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc: "check that arena buffers (proto.GetBuf) and pooled frames (Recv/ReadFrame/GetMessage) " +
		"are released exactly once on every path and never used after release",
	Run: run,
}

type status int

const (
	owned status = iota
	released
	deferReleased // a defer releases it at every exit
	transferred   // ownership left this function; stop tracking
)

type track struct {
	status   status
	kind     string // "buffer" or "frame"
	loop     int    // loop depth at acquisition
	acquired token.Pos
	// errVar is the companion error variable when the acquisition had
	// the `v, err := ch.Recv()` shape: on a branch where errVar != nil
	// the value is nil by the (m, err) contract and stops being tracked.
	errVar *types.Var
}

// state maps tracked variables to their ownership status along one
// abstract path.
type state map[*types.Var]*track

func (s state) clone() state {
	c := make(state, len(s))
	for v, t := range s {
		cp := *t
		c[v] = &cp
	}
	return c
}

type checker struct {
	pass     *analysis.Pass
	info     *types.Info
	loop     int
	results  map[*types.Var]bool // named result parameters of the function
	reported map[token.Pos]bool  // one diagnostic per key, across all branch clones
}

// reportOnce emits one diagnostic per key; branches are analyzed as
// independent paths, so the same defect would otherwise be reported once
// per path that exhibits it.
func (c *checker) reportOnce(key, pos token.Pos, format string, args ...any) {
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, format, args...)
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Type, fn.Body)
		}
		// Function literals — goroutine receive loops in particular — are
		// functions in their own right: values acquired inside the body
		// must be consumed inside it. The main walk never descends into a
		// literal (captured values are treated as transferred), so each
		// body is analyzed exactly once, with a clean slate.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, lit.Type, lit.Body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, typ *ast.FuncType, body *ast.BlockStmt) {
	c := &checker{pass: pass, info: pass.TypesInfo, results: map[*types.Var]bool{}, reported: map[token.Pos]bool{}}
	if typ.Results != nil {
		for _, field := range typ.Results.List {
			for _, name := range field.Names {
				if v, ok := c.info.Defs[name].(*types.Var); ok {
					c.results[v] = true
				}
			}
		}
	}
	st := state{}
	if !c.stmts(body.List, st) {
		c.checkExit(st, body.Rbrace, "function exit")
	}
}

// acquisition reports what call expr acquires, unwrapping slice
// expressions (GetBuf(4)[:4] is still the pooled buffer).
func (c *checker) acquisition(e ast.Expr) (kind string, ok bool) {
	e = ast.Unparen(e)
	if sl, isSlice := e.(*ast.SliceExpr); isSlice {
		return c.acquisition(sl.X)
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	if analysis.IsPkgFunc(c.info, call, protoPath, "GetBuf") {
		return "buffer", true
	}
	if analysis.IsPkgFunc(c.info, call, protoPath, "ReadFrame") ||
		analysis.IsPkgFunc(c.info, call, protoPath, "GetMessage") {
		return "frame", true
	}
	// Any method named Recv returning (*proto.Message, error): the
	// transport.Channel contract and every implementation of it.
	if fn := analysis.CalleeFunc(c.info, call); fn != nil && fn.Name() == "Recv" {
		sig := fn.Signature()
		if sig.Recv() != nil && sig.Results().Len() == 2 &&
			analysis.NamedTypeIs(sig.Results().At(0).Type(), protoPath, "Message") {
			return "frame", true
		}
	}
	return "", false
}

// releaseCall reports whether call is proto.Release / proto.PutBuf and
// returns the released variable, if it is a plain identifier.
func (c *checker) releaseCall(call *ast.CallExpr) (*types.Var, bool) {
	if !analysis.IsPkgFunc(c.info, call, protoPath, "Release") &&
		!analysis.IsPkgFunc(c.info, call, protoPath, "PutBuf") {
		return nil, false
	}
	if len(call.Args) != 1 {
		return nil, false
	}
	return analysis.ObjectOf(c.info, call.Args[0]), true
}

// checkExit reports every still-owned variable at a path exit.
func (c *checker) checkExit(st state, pos token.Pos, where string) {
	for v, t := range st {
		if t.status == owned {
			c.reportOnce(t.acquired, t.acquired, "arena %s %q is not released on every path (reaches %s unreleased; add proto.%s or transfer ownership)",
				t.kind, v.Name(), where, releaseName(t.kind))
		}
	}
}

func releaseName(kind string) string {
	if kind == "buffer" {
		return "PutBuf"
	}
	return "Release"
}

// use handles one syntactic mention of a tracked variable.
func (c *checker) use(st state, v *types.Var, pos token.Pos) {
	t, ok := st[v]
	if !ok {
		return
	}
	if t.status == released {
		c.reportOnce(pos, pos, "use of arena %s %q after release (the memory may back another frame)", t.kind, v.Name())
	}
}

// transferIn marks every tracked variable mentioned inside e as
// transferred (closures, composite literals, escaping stores).
func (c *checker) transferIn(st state, e ast.Node) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := c.info.Uses[id].(*types.Var); ok {
				if t, ok := st[v]; ok && t.status != released {
					t.status = transferred
				}
			}
		}
		return true
	})
}

// expr walks one expression: flags uses-after-release, applies call
// consumption/transfer semantics, and treats closures capturing a
// tracked value as transfers.
func (c *checker) expr(st state, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure may run at any time; whatever it captures is
			// no longer ours to track.
			c.transferIn(st, n.Body)
			return false
		case *ast.CallExpr:
			c.call(st, n)
			return false
		case *ast.Ident:
			if v, ok := c.info.Uses[n].(*types.Var); ok {
				c.use(st, v, n.Pos())
			}
		}
		return true
	})
}

// call applies release/transfer semantics of one call expression.
func (c *checker) call(st state, call *ast.CallExpr) {
	// Walk nested calls in arguments first (inner-to-outer order).
	for _, arg := range call.Args {
		c.expr(st, arg)
	}
	c.expr(st, call.Fun)

	if v, isRelease := c.releaseCall(call); isRelease {
		if v != nil {
			if t, ok := st[v]; ok {
				switch t.status {
				case owned, deferReleased:
					t.status = released
				case released:
					c.reportOnce(call.Pos(), call.Pos(), "arena %s %q released twice on this path", t.kind, v.Name())
				}
			}
		}
		return
	}
	// Every tracked variable passed as an argument transfers ownership
	// to the callee (SendAll, AppendFrame, deliver, enqueue, ...).
	// Receiver-position mentions (m.Detach()) do not transfer.
	for _, arg := range call.Args {
		if v := analysis.ObjectOf(c.info, arg); v != nil {
			if t, ok := st[v]; ok && t.status != released {
				t.status = transferred
			}
		}
	}
}

// assign handles one assignment statement.
func (c *checker) assign(st state, a *ast.AssignStmt) {
	// A call that takes a tracked var as an argument AND reassigns the
	// same var from its results keeps ownership in the var (the
	// buf, err = proto.AppendFrame(buf, ...) pattern).
	keepOwned := map[*types.Var]bool{}
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				v := analysis.ObjectOf(c.info, arg)
				if v == nil {
					continue
				}
				if t, ok := st[v]; ok && t.status == owned {
					for _, lhs := range a.Lhs {
						if analysis.ObjectOf(c.info, lhs) == v {
							keepOwned[v] = true
						}
					}
				}
			}
		}
	}
	snapshot := map[*types.Var]status{}
	for v := range keepOwned {
		snapshot[v] = st[v].status
	}
	for _, rhs := range a.Rhs {
		c.expr(st, rhs)
	}
	for v := range keepOwned {
		st[v].status = snapshot[v]
	}

	// Storing a tracked value into anything that is not a plain local
	// (a field, an element, a dereference) transfers it; copying it to
	// another local aliases it — stop tracking the original too.
	for _, rhs := range a.Rhs {
		if v := analysis.ObjectOf(c.info, rhs); v != nil {
			if t, ok := st[v]; ok && t.status == owned {
				t.status = transferred
			}
		}
	}

	// Acquisitions bind to plain identifier targets. A blank target can
	// never be released: the value is lost to the GC the moment it is
	// acquired.
	if len(a.Rhs) == 1 {
		if kind, ok := c.acquisition(a.Rhs[0]); ok {
			if isBlank(a.Lhs[0]) {
				c.reportOnce(a.Rhs[0].Pos(), a.Rhs[0].Pos(),
					"arena %s is discarded (assigned to _): bind it and call proto.%s", kind, releaseName(kind))
				return
			}
			if v := analysis.ObjectOf(c.info, a.Lhs[0]); v != nil && !c.results[v] {
				if t, exists := st[v]; exists && t.status == owned {
					c.reportOnce(t.acquired, a.Pos(), "arena %s %q reacquired while still owned (previous acquisition leaks)", t.kind, v.Name())
				}
				// This statement redefines every LHS var; stale error links
				// into them no longer describe the new values.
				c.clearErrLinks(st, a.Lhs)
				tr := &track{status: owned, kind: kind, loop: c.loop, acquired: a.Rhs[0].Pos()}
				if len(a.Lhs) == 2 {
					tr.errVar = analysis.ObjectOf(c.info, a.Lhs[1])
				}
				st[v] = tr
			}
			return
		}
	}
	// Non-acquisition writes to a tracked var end its tracking (it now
	// holds something else; the old value's fate was decided above).
	c.clearErrLinks(st, a.Lhs)
	for _, lhs := range a.Lhs {
		if v := analysis.ObjectOf(c.info, lhs); v != nil {
			if t, ok := st[v]; ok && !keepOwned[v] {
				if a.Tok == token.ASSIGN || a.Tok == token.DEFINE {
					if t.status == released {
						delete(st, v)
					}
				}
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// clearErrLinks severs errVar links into variables the statement writes:
// after `err = f()` a nil-check on err says nothing about an earlier
// (m, err) acquisition.
func (c *checker) clearErrLinks(st state, lhs []ast.Expr) {
	for _, l := range lhs {
		v := analysis.ObjectOf(c.info, l)
		if v == nil {
			continue
		}
		for _, t := range st {
			if t.errVar == v {
				t.errVar = nil
			}
		}
	}
}

// merge combines branch states: owned on any live branch wins (a leak
// on one path is a leak), then released, then transferred.
func merge(states []state) state {
	if len(states) == 0 {
		return state{}
	}
	out := states[0].clone()
	for _, s := range states[1:] {
		for v, t := range s {
			cur, ok := out[v]
			if !ok {
				cp := *t
				out[v] = &cp
				continue
			}
			if rank(t.status) < rank(cur.status) {
				cur.status = t.status
			}
		}
	}
	return out
}

func rank(s status) int {
	switch s {
	case owned:
		return 0
	case released:
		return 1
	case deferReleased:
		return 2
	default:
		return 3
	}
}

// stmts walks a statement list, returning true when every path through
// it terminates (return/panic), so the caller skips its exit check.
func (c *checker) stmts(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) stmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(st, s)
	case *ast.ExprStmt:
		c.expr(st, s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					c.expr(st, val)
				}
				if len(vs.Values) == 1 && len(vs.Names) >= 1 {
					if kind, ok := c.acquisition(vs.Values[0]); ok {
						if v, ok := c.info.Defs[vs.Names[0]].(*types.Var); ok {
							st[v] = &track{status: owned, kind: kind, loop: c.loop, acquired: vs.Values[0].Pos()}
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if v := analysis.ObjectOf(c.info, r); v != nil {
				if t, ok := st[v]; ok && t.status != released {
					t.status = transferred
					continue
				}
			}
			c.expr(st, r)
		}
		c.checkExit(st, s.Pos(), "this return")
		return true
	case *ast.DeferStmt:
		if v, isRelease := c.releaseCall(s.Call); isRelease && v != nil {
			if t, ok := st[v]; ok && t.status == owned {
				t.status = deferReleased
			}
			return false
		}
		c.expr(st, s.Call.Fun)
		for _, a := range s.Call.Args {
			c.expr(st, a)
		}
		for _, a := range s.Call.Args {
			if v := analysis.ObjectOf(c.info, a); v != nil {
				if t, ok := st[v]; ok && t.status == owned {
					t.status = transferred
				}
			}
		}
	case *ast.GoStmt:
		c.transferIn(st, s.Call)
	case *ast.SendStmt:
		c.expr(st, s.Chan)
		if v := analysis.ObjectOf(c.info, s.Value); v != nil {
			if t, ok := st[v]; ok {
				c.use(st, v, s.Value.Pos())
				if t.status == owned {
					t.status = transferred
				}
				return false
			}
		}
		c.expr(st, s.Value)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.expr(st, s.Cond)
		thenSt := st.clone()
		elseSt := st.clone()
		// Error-branch awareness: after `m, err := ch.Recv()`, the branch
		// where err != nil has m == nil by the (m, err) contract — there
		// is nothing to release on that path.
		if errv, isNeq := errNilCond(c.info, s.Cond); errv != nil {
			if isNeq {
				dropErrTracked(thenSt, errv)
			} else {
				dropErrTracked(elseSt, errv)
			}
		}
		thenDone := c.stmts(s.Body.List, thenSt)
		elseDone := false
		if s.Else != nil {
			elseDone = c.stmt(s.Else, elseSt)
		}
		var live []state
		if !thenDone {
			live = append(live, thenSt)
		}
		if !elseDone {
			live = append(live, elseSt)
		}
		if len(live) == 0 {
			return true
		}
		replace(st, merge(live))
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Expr
		var body *ast.BlockStmt
		hasDefault := false
		if sw, ok := s.(*ast.SwitchStmt); ok {
			init, tag, body = sw.Init, sw.Tag, sw.Body
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			init, body = ts.Init, ts.Body
			if as, ok := ts.Assign.(*ast.AssignStmt); ok {
				c.expr(st, as.Rhs[0])
			} else if es, ok := ts.Assign.(*ast.ExprStmt); ok {
				c.expr(st, es.X)
			}
		}
		if init != nil {
			c.stmt(init, st)
		}
		if tag != nil {
			c.expr(st, tag)
		}
		var live []state
		for _, cl := range body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			branch := st.clone()
			for _, e := range cc.List {
				c.expr(branch, e)
			}
			if !c.stmts(cc.Body, branch) {
				live = append(live, branch)
			}
		}
		if !hasDefault {
			live = append(live, st.clone())
		}
		if len(live) == 0 {
			return true
		}
		replace(st, merge(live))
	case *ast.SelectStmt:
		var live []state
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			branch := st.clone()
			if cc.Comm != nil {
				c.stmt(cc.Comm, branch)
			}
			if !c.stmts(cc.Body, branch) {
				live = append(live, branch)
			}
		}
		if len(live) == 0 {
			return true
		}
		replace(st, merge(live))
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.expr(st, s.Cond)
		}
		c.loopBody(s.Body, s.Post, st)
		if s.Cond == nil && !hasBreak(s.Body) {
			return true // for{} with no break: nothing falls through
		}
	case *ast.RangeStmt:
		c.expr(st, s.X)
		c.loopBody(s.Body, nil, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			c.checkLoopVars(st, s.Pos())
		}
		// break/continue/goto end this path locally; state rejoins via
		// the conservative after-loop handling in loopBody.
		return true
	}
	return false
}

// replace overwrites dst's contents with src's.
func replace(dst, src state) {
	for v := range dst {
		delete(dst, v)
	}
	for v, t := range src {
		dst[v] = t
	}
}

// loopBody analyzes one loop body: values acquired inside the body must
// be consumed by the end of each iteration, and outer values the body
// may consume stop being tracked afterwards (path explosion is not
// worth the precision).
func (c *checker) loopBody(body *ast.BlockStmt, post ast.Stmt, st state) {
	c.loop++
	inner := st.clone()
	terminated := c.stmts(body.List, inner)
	if post != nil {
		c.stmt(post, inner)
	}
	if !terminated {
		c.checkLoopVars(inner, body.Rbrace)
	}
	c.loop--
	// After the loop: forget body-acquired vars; demote outer vars the
	// body touched (released or transferred on some iteration) so later
	// checks cannot double-report or false-positive on them.
	for v, t := range inner {
		cur, ok := st[v]
		if !ok || t.loop > c.loop {
			continue
		}
		if t.status != cur.status {
			cur.status = transferred
		}
	}
}

// checkLoopVars flags still-owned values acquired in the current loop
// iteration (the next iteration or the loop exit orphans them).
func (c *checker) checkLoopVars(st state, pos token.Pos) {
	for v, t := range st {
		if t.status == owned && t.loop >= c.loop && c.loop > 0 {
			c.reportOnce(t.acquired, t.acquired, "arena %s %q is not released before the next loop iteration", t.kind, v.Name())
		}
	}
}

// errNilCond matches `err != nil` / `err == nil` (either operand order),
// returning the error variable and whether the operator was !=.
func errNilCond(info *types.Info, cond ast.Expr) (*types.Var, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, _ := info.Uses[id].(*types.Var)
	return v, b.Op == token.NEQ
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// dropErrTracked forgets every still-owned value whose companion error
// variable is errv: on this branch the acquisition failed and the value
// is nil.
func dropErrTracked(st state, errv *types.Var) {
	for v, t := range st {
		if t.errVar == errv && t.status == owned {
			delete(st, v)
		}
	}
}

// hasBreak reports whether the loop body contains a break that exits
// the loop the body belongs to (unlabeled at depth zero, or any
// labeled break — conservatively assumed to target our loop).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && (n.Label != nil || depth == 0) {
				found = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			depth++
		case *ast.FuncLit:
			return
		}
		d := depth
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return m == n
			}
			walk(m, d)
			return false
		})
	}
	for _, s := range body.List {
		walk(s, 0)
	}
	return found
}
