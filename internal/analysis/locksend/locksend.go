// Package locksend enforces the lock discipline behind the fleet
// session-pump and lender drain fixes: a function must not perform a
// potentially-blocking handoff while holding a sync.Mutex or
// sync.RWMutex it locked itself. The classic deadlock: goroutine A
// holds mu and blocks sending on a channel whose consumer needs mu.
//
// Flagged while a lock is held in the same function:
//
//   - a naked channel send statement (ch <- v outside select);
//   - a select containing send cases with no default and no
//     cancellation-shaped receive (a receive of a chan struct{} — the
//     done-channel idiom — makes the select escapable);
//   - a call through a func-typed variable, parameter, or field — the
//     lender/pool callback class, whose implementation is outside this
//     function's control and may itself need the lock. A local bound
//     directly to a function literal (`serves := func(...) ...`) is
//     exempt: its body is visible right there and is analyzed in its
//     own right.
//
// Deliberate exceptions (a send known to target a buffered channel
// drained independently of the lock) are annotated at the site with
// //pando:allow locksend <reason>.
//
// The analysis is syntactic and function-local: a deferred unlock
// keeps the lock held to the end of the function; a branch that
// unlocks and returns does not poison the code after the branch.
package locksend

import (
	"go/ast"
	"go/token"
	"go/types"

	"pando/internal/analysis"
)

// Analyzer is the locksend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc: "check that no blocking channel send or func-valued callback happens " +
		"while a sync.Mutex/RWMutex locked in the same function is held",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		closures := closureVars(pass.TypesInfo, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass, info: pass.TypesInfo, closures: closures}
			c.block(fn.Body.List, map[string]bool{})
		}
		// Function literals run later (goroutines, callbacks) in their
		// own lock scope; walk each one independently with a clean slate.
		// The statement walker never descends into literals, so no body
		// is analyzed twice.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c := &checker{pass: pass, info: pass.TypesInfo, closures: closures}
				c.block(lit.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// closureVars collects variables bound (by := or var) directly to a
// function literal anywhere in the file.
func closureVars(info *types.Info, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(name *ast.Ident, rhs ast.Expr) {
		if _, ok := ast.Unparen(rhs).(*ast.FuncLit); !ok {
			return
		}
		if obj := info.Defs[name]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

type checker struct {
	pass     *analysis.Pass
	info     *types.Info
	closures map[types.Object]bool // locals bound directly to a FuncLit
}

// mutexCall matches x.Lock / x.RLock / x.Unlock / x.RUnlock where x is
// a sync.Mutex or sync.RWMutex (possibly behind a pointer), returning a
// stable key for the lock expression.
func (c *checker) mutexCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := c.info.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if !analysis.NamedTypeIs(t, "sync", "Mutex") && !analysis.NamedTypeIs(t, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), method, true
}

// block walks one statement list with the set of held locks. held is
// mutated in place; branches get copies.
func (c *checker) block(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func clone(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *checker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, method, ok := c.mutexCall(call); ok {
				switch method {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		c.expr(s.X, held)
	case *ast.DeferStmt:
		if key, method, ok := c.mutexCall(s.Call); ok {
			_ = key
			_ = method
			// defer mu.Unlock(): the lock stays held to function end;
			// nothing to do (we never clear it).
			return
		}
		c.expr(s.Call, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			c.pass.Reportf(s.Arrow, "blocking channel send while %s is held (consumer may need the lock: deadlock)", anyLock(held))
		}
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	case *ast.SelectStmt:
		if len(held) > 0 && selectCanBlockSending(c.info, s) {
			c.pass.Reportf(s.Pos(), "select with send cases and no default/cancellation case while %s is held: deadlock risk", anyLock(held))
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			branch := clone(held)
			if cc.Comm != nil {
				// Comm clauses themselves were judged above; don't
				// re-report the send.
				switch comm := cc.Comm.(type) {
				case *ast.AssignStmt:
					for _, r := range comm.Rhs {
						c.expr(r, branch)
					}
				case *ast.ExprStmt:
					c.expr(comm.X, branch)
				}
			}
			c.block(cc.Body, branch)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r, held)
		}
		for _, l := range s.Lhs {
			c.expr(l, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		thenHeld := clone(held)
		c.block(s.Body.List, thenHeld)
		if s.Else != nil {
			c.stmt(s.Else, clone(held))
		}
		// If the then-branch falls through after changing lock state
		// (the `if cond { mu.Unlock(); ... }` shape), be conservative
		// only about locks still held on the fallthrough path.
		if !terminates(s.Body.List) {
			for k := range held {
				if !thenHeld[k] {
					delete(held, k)
				}
			}
		}
	case *ast.BlockStmt:
		c.block(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.expr(s.Cond, held)
		}
		body := clone(held)
		c.block(s.Body.List, body)
		if s.Post != nil {
			c.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.block(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			c.block(cl.(*ast.CaseClause).Body, clone(held))
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		for _, cl := range s.Body.List {
			c.block(cl.(*ast.CaseClause).Body, clone(held))
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, held)
		}
	case *ast.GoStmt:
		// The goroutine does not inherit our lock state; its literal is
		// walked separately with a clean slate.
		for _, a := range s.Call.Args {
			c.expr(a, held)
		}
	}
}

// expr flags callback invocations under a held lock. Function literals
// are skipped: they execute later, in their own lock context.
func (c *checker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if len(held) > 0 && c.isFuncValueCall(n) {
				c.pass.Reportf(n.Pos(), "func-valued callback invoked while %s is held (callee may block or need the lock)", anyLock(held))
			}
		}
		return true
	})
}

// isFuncValueCall reports whether the call goes through a func-typed
// variable, parameter, or struct field rather than a declared function
// or method.
func (c *checker) isFuncValueCall(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	t := c.info.TypeOf(fun)
	if t == nil {
		return false
	}
	if _, isSig := t.Underlying().(*types.Signature); !isSig {
		return false // conversion or builtin
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		obj := c.info.ObjectOf(fun)
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
		return !c.closures[obj]
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[fun]; ok {
			return sel.Kind() == types.FieldVal
		}
		// Qualified name pkg.F or method value: not a field.
		return false
	}
	return false
}

// terminates reports whether the statement list obviously ends the
// enclosing path (return, branch, or panic as its last statement).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// selectCanBlockSending reports whether the select both contains a send
// case and lacks every escape hatch (default, or a receive from a
// cancellation-shaped chan struct{}).
func selectCanBlockSending(info *types.Info, s *ast.SelectStmt) bool {
	hasSend := false
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			return false // default: never blocks
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			hasSend = true
		case *ast.ExprStmt:
			if recvIsCancellation(info, comm.X) {
				return false
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 && recvIsCancellation(info, comm.Rhs[0]) {
				return false
			}
		}
	}
	return hasSend
}

// recvIsCancellation reports whether e is `<-ch` with ch a chan struct{}
// (the done-channel idiom) — an escape that eventually fires.
func recvIsCancellation(info *types.Info, e ast.Expr) bool {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "<-" {
		return false
	}
	t := info.TypeOf(u.X)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// anyLock names one held lock for the diagnostic, smallest key first so
// the message is stable across runs.
func anyLock(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	if best == "" {
		return "a mutex"
	}
	return best
}
