// Package locksendtest seeds lock-discipline violations (and their
// legitimate twins) for the locksend analyzer suite.
package locksendtest

import "sync"

type hub struct {
	mu   sync.Mutex
	out  chan int
	emit func(int)
}

// nakedSend blocks on a channel while holding the lock its consumer
// may need.
func (h *hub) nakedSend(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.out <- v // want `blocking channel send while h.mu is held`
}

// callback invokes a field-held func value under the lock.
func (h *hub) callback(v int) {
	h.mu.Lock()
	h.emit(v) // want `func-valued callback invoked while h.mu is held`
	h.mu.Unlock()
}

// selectNoEscape has a send case and no way out.
func (h *hub) selectNoEscape(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select { // want `select with send cases and no default/cancellation case while h.mu is held`
	case h.out <- v:
	}
}

// afterUnlock hands off only once the lock is dropped.
func (h *hub) afterUnlock(v int) {
	h.mu.Lock()
	h.mu.Unlock()
	h.out <- v
}

// selectDefault never blocks: the default case is the escape.
func (h *hub) selectDefault(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.out <- v:
	default:
	}
}

// selectDone escapes through the cancellation-shaped receive.
func (h *hub) selectDone(v int, done chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.out <- v:
	case <-done:
	}
}

// localClosure calls a func local bound directly to a literal: its body
// is visible right here and analyzed in its own right.
func (h *hub) localClosure(v int) int {
	double := func(x int) int { return 2 * x }
	h.mu.Lock()
	defer h.mu.Unlock()
	return double(v)
}

// spawned goroutines do not inherit this function's lock state.
func (h *hub) spawn(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() {
		h.out <- v
	}()
}

// allowed documents a deliberate send-under-lock with its reason.
func (h *hub) allowed(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//pando:allow locksend out is buffered to the worker count and drained without the lock
	h.out <- v
}
