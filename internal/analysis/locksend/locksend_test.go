package locksend_test

import (
	"testing"

	"pando/internal/analysis/analysistest"
	"pando/internal/analysis/locksend"
)

func TestLocksend(t *testing.T) {
	analysistest.Run(t, locksend.Analyzer, "locksendtest")
}
