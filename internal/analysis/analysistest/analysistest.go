// Package analysistest runs a pando-vet analyzer over GOPATH-style
// testdata packages and diffs its diagnostics against expectations
// embedded in the sources, mirroring x/tools' analysistest so suites
// written here port to the upstream harness unchanged in spirit.
//
// Layout: each analyzer package holds testdata/src/<pkg>/*.go trees.
// Imports in testdata resolve against testdata/src first — a stub
// pando/internal/proto there shadows the real package, so ownership
// fixtures type-check without dragging in the arena — and fall back to
// compiler export data for the standard library.
//
// Expectations are `// want` comments carrying one or more regular
// expressions, quoted or backquoted:
//
//	m, err := c.Recv() // want `arena frame "m" is not released`
//
// A want comment on a line with code applies to that line. A want
// comment standing alone applies to the next line — the same adjacency
// rule //pando: directives use — which is how a diagnostic anchored to
// a directive comment itself (a reason-less suppression) is asserted.
// Every diagnostic must be matched by a want and every want must match
// a diagnostic, or the test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"pando/internal/analysis"
)

// Run loads each named package from <caller>/testdata/src/<name>, runs
// the analyzer over it, and reports every mismatch between produced
// diagnostics and // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("analysistest: getwd: %v", err)
	}
	root := filepath.Join(wd, "testdata", "src")
	ld := newLoader(root)
	for _, name := range pkgs {
		pkg, err := ld.load(name)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", name, err)
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("analysistest: run %s on %s: %v", a.Name, name, err)
		}
		check(t, pkg, diags)
	}
}

// loader type-checks testdata packages from source, resolving imports
// against testdata/src first and the real toolchain's export data last.
type loader struct {
	root string
	base *analysis.Loader
	deps map[string]*types.Package
}

func newLoader(root string) *loader {
	return &loader{root: root, base: analysis.NewLoader(root), deps: map[string]*types.Package{}}
}

// Import implements types.Importer for the testdata tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		pkg, err := l.check(path, dir)
		if err != nil {
			return nil, err
		}
		l.deps[path] = pkg.Types
		return pkg.Types, nil
	}
	return l.base.Import(path)
}

// load type-checks the target testdata package.
func (l *loader) load(name string) (*analysis.Package, error) {
	return l.check(name, filepath.Join(l.root, filepath.FromSlash(name)))
}

// check parses and type-checks one testdata directory. Type errors are
// fatal: fixtures must be valid Go, or the analyzers see half-filled
// type information and the suite proves nothing.
func (l *loader) check(path, dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := l.base.Fset()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &analysis.Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// expectation is one parsed want regexp, anchored to a file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// check diffs diagnostics against the package's want comments.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, parseWants(t, pkg.Fset, f)...)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// wantPatterns matches the quoted and backquoted regexp tokens of one
// want comment.
var wantPatterns = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants extracts the file's want expectations. The adjacency rule
// matches directives: a want comment sharing a line with code asserts
// on that line; a standalone one asserts on the line below it.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	codeLines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		default:
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		}
	})
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			line := pos.Line
			if !codeLines[line] {
				line++
			}
			toks := wantPatterns.FindAllString(text[len("want "):], -1)
			if len(toks) == 0 {
				t.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				continue
			}
			for _, tok := range toks {
				var pat string
				if tok[0] == '`' {
					pat = tok[1 : len(tok)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(tok)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
						continue
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					continue
				}
				out = append(out, &expectation{file: pos.Filename, line: line, re: re, raw: pat})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].line < out[j].line })
	return out
}
