package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file loads type-checked packages without golang.org/x/tools:
// target packages are parsed and type-checked from source, while their
// dependencies (standard library and module siblings alike) are
// imported from compiler export data that `go list -export` produces.
// That keeps the whole pipeline on the standard library and the go
// toolchain already in the build image.

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves import paths to export data via the go command and
// type-checks requested packages from source.
type Loader struct {
	// Dir is the directory go list runs in (the module root).
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	gcImp   types.Importer
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.gcImp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs go list with the given flags, decoding the JSON stream.
func (l *Loader) goList(args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Dir,Export,GoFiles,Error"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// harvest records export data locations from a go list run.
func (l *Loader) harvest(pkgs []listedPkg) {
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// lookup feeds export data files to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		// Lazy miss: resolve just this path (plus its deps, harvested
		// for later) — hit by analysistest packages whose stdlib import
		// sets the main Load run did not need.
		pkgs, err := l.goList("-export", "-deps", path)
		if err != nil {
			return nil, err
		}
		l.harvest(pkgs)
		f, ok = l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(f)
}

// Import implements types.Importer over the export data table.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.gcImp.Import(path)
}

// Load type-checks the packages matched by patterns from source,
// resolving every dependency through export data. Packages with no Go
// files (or only test files) are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	// One -deps -export pass primes the export table for everything the
	// targets (and their dependencies) import.
	deps, err := l.goList(append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.harvest(deps)

	var out []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			continue
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one package from its source files.
func (l *Loader) check(path, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}, nil
}
