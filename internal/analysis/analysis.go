// Package analysis is pando-vet's analyzer framework: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis built on
// the standard library's go/ast and go/types. It exists because the
// repo's correctness protocols — frame-arena ownership, chaos
// determinism, lock discipline, context-guarded goroutines — are
// conventions that dynamic chaos runs can only probe; the analyzers in
// the sub-packages check them on every build.
//
// The shape mirrors x/tools deliberately (Analyzer, Pass, Reportf) so
// an analyzer written here ports to the upstream framework by swapping
// imports, and vice versa.
//
// # Directives
//
// Analyzers and the driver honor //pando: directive comments:
//
//	//pando:deterministic
//	    On a function's doc comment: the function body is a
//	    deterministic domain — detrand forbids wall clocks, global
//	    math/rand, and map-order iteration inside it.
//
//	//pando:nondeterministic <reason>
//	    On (or immediately above) an offending line inside a
//	    deterministic domain: suppresses the detrand diagnostic. The
//	    reason is mandatory.
//
//	//pando:allow <analyzer> <reason>
//	    On (or immediately above) an offending line: suppresses that
//	    analyzer's diagnostic. The reason is mandatory.
//
// A directive with a missing reason is itself a diagnostic, so every
// suppression in the tree documents why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pando:allow directives.
	Name string
	// Doc is the one-paragraph description printed by pando-vet -help.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives []Directive
	diags      []Diagnostic
	suppressed int
}

// A Directive is one parsed //pando: comment.
type Directive struct {
	Pos  token.Pos
	Line int    // line the directive applies to (its own line)
	End  int    // last line the directive covers (Line, or Line+1 when standalone)
	Verb string // "deterministic", "nondeterministic", "allow", ...
	Args string // rest of the comment, space-trimmed
}

// Reportf records a diagnostic at pos unless a directive suppresses it.
// Suppression: an "allow <analyzer> <reason>" directive — or, for the
// detrand analyzer, a "nondeterministic <reason>" directive — on the
// same line as pos or standing alone on the line above it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, d := range p.directives {
		if position.Line < d.Line || position.Line > d.End {
			continue
		}
		var reason string
		switch d.Verb {
		case "allow":
			name, rest, _ := strings.Cut(d.Args, " ")
			if name != p.Analyzer.Name {
				continue
			}
			reason = strings.TrimSpace(rest)
		case "nondeterministic":
			if p.Analyzer.Name != "detrand" {
				continue
			}
			reason = strings.TrimSpace(d.Args)
		default:
			continue
		}
		if reason == "" {
			p.diags = append(p.diags, Diagnostic{
				Pos:      p.Fset.Position(d.Pos),
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("suppression of %s without a reason (write //pando:%s <reason>)", p.Analyzer.Name, d.Verb),
			})
		}
		p.suppressed++
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directives returns every parsed //pando: directive of the package.
func (p *Pass) Directives() []Directive { return p.directives }

// FuncMarked reports whether fn's doc comment (or a directive on the
// lines immediately preceding the declaration) carries the verb.
func (p *Pass) FuncMarked(fn *ast.FuncDecl, verb string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if v, _, ok := parseDirective(c.Text); ok && v == verb {
				return true
			}
		}
	}
	declLine := p.Fset.Position(fn.Pos()).Line
	for _, d := range p.directives {
		if d.Verb == verb && declLine >= d.Line && declLine <= d.End+1 {
			return true
		}
	}
	return false
}

// parseDirective splits one comment into a //pando: verb and its args.
func parseDirective(text string) (verb, args string, ok bool) {
	const prefix = "//pando:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	verb, args, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(args), verb != ""
}

// collectDirectives parses every //pando: comment of the files. A
// directive on a line of its own also covers the next line, so it can
// sit above the statement it annotates.
func collectDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		// Map of lines that hold non-comment code, to decide whether a
		// directive stands alone on its line.
		codeLines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
				return true
			default:
				codeLines[fset.Position(n.Pos()).Line] = true
				return true
			}
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, args, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				d := Directive{Pos: c.Pos(), Line: line, End: line, Verb: verb, Args: args}
				if !codeLines[line] {
					d.End = line + 1
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Run applies each analyzer to the package, returning the surviving
// (unsuppressed) diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	dirs := collectDirectives(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			directives: dirs,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
