package detrand_test

import (
	"testing"

	"pando/internal/analysis/analysistest"
	"pando/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "detrandtest")
}
