// Package detrand enforces the chaos-determinism protocol from PR 5:
// code on a deterministic path — chaos schedule construction, netsim
// pipe jitter, anything a seed must fully determine — may not consult
// wall clocks (time.Now/Since/Until), draw from the global math/rand
// generator (whose state is shared and seed-uncontrolled), or iterate
// a map to drive ordering (map order is randomized per run).
//
// Functions opt in with a //pando:deterministic mark on their doc
// comment; the mark covers the whole body including nested function
// literals. A violation that is genuinely intended — Schedule.Play
// mapping deterministic offsets onto real time, for instance — is
// suppressed with //pando:nondeterministic <reason> on (or above) the
// offending line, and the reason is mandatory, so every wall-clock
// touch on a deterministic path is visible and justified at the site.
//
// Seeded generators (methods on a *math/rand.Rand value) are fine:
// determinism comes from the seed, which is exactly the chaos.Rand
// discipline.
package detrand

import (
	"go/ast"
	"go/types"

	"pando/internal/analysis"
)

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "check that //pando:deterministic functions avoid wall clocks, " +
		"global math/rand, and map-order iteration",
	Run: run,
}

// wallClock lists the time package functions that read the wall clock.
// Timer/ticker constructors are deliberately absent: they map already-
// deterministic durations onto real time, which is what a deterministic
// schedule player must eventually do.
var wallClock = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pass.FuncMarked(fn, "deterministic") {
				continue
			}
			check(pass, fn.Body)
		}
	}
	return nil
}

func check(pass *analysis.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClock[fn.Name()] {
					pass.Reportf(n.Pos(), "wall clock read (time.%s) in deterministic function: seeded replays would drift", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Constructors (rand.New, rand.NewSource, rand.NewPCG, ...)
				// build the seeded generators the discipline asks for; only
				// draws from the package-global generator are violations.
				if len(fn.Name()) >= 3 && fn.Name()[:3] == "New" {
					return true
				}
				pass.Reportf(n.Pos(), "global %s.%s in deterministic function: draw from the seeded chaos.Rand instead", lastSegment(fn.Pkg().Path()), fn.Name())
			}
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration in deterministic function: runtime map order is randomized; sort the keys first")
				}
			}
		}
		return true
	})
}

func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
