// Package detrandtest seeds chaos-determinism violations (and their
// legitimate twins) for the detrand analyzer suite.
package detrandtest

import (
	"math/rand"
	"time"
)

//pando:deterministic
func clock() time.Duration {
	now := time.Now()      // want `wall clock read \(time.Now\) in deterministic function`
	return time.Since(now) // want `wall clock read \(time.Since\) in deterministic function`
}

//pando:deterministic
func globalDraw() int {
	return rand.Int() // want `global rand.Int in deterministic function`
}

//pando:deterministic
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors build the seeded generator: fine
	return r.Int()
}

//pando:deterministic
func iterate(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration in deterministic function`
		total += v
	}
	return total
}

//pando:deterministic
func annotated() time.Time {
	//pando:nondeterministic anchoring the deterministic offsets to real time is this helper's whole purpose
	return time.Now()
}

//pando:deterministic
func missingReason() time.Time {
	// want `suppression of detrand without a reason`
	//pando:nondeterministic
	return time.Now()
}

// unmarked functions are outside the deterministic domain.
func unmarked() time.Time { return time.Now() }
