// Package detrandtest seeds chaos-determinism violations (and their
// legitimate twins) for the detrand analyzer suite.
package detrandtest

import (
	"math/rand"
	"time"
)

//pando:deterministic
func clock() time.Duration {
	now := time.Now()      // want `wall clock read \(time.Now\) in deterministic function`
	return time.Since(now) // want `wall clock read \(time.Since\) in deterministic function`
}

//pando:deterministic
func globalDraw() int {
	return rand.Int() // want `global rand.Int in deterministic function`
}

//pando:deterministic
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors build the seeded generator: fine
	return r.Int()
}

//pando:deterministic
func iterate(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration in deterministic function`
		total += v
	}
	return total
}

//pando:deterministic
func annotated() time.Time {
	//pando:nondeterministic anchoring the deterministic offsets to real time is this helper's whole purpose
	return time.Now()
}

//pando:deterministic
func missingReason() time.Time {
	// want `suppression of detrand without a reason`
	//pando:nondeterministic
	return time.Now()
}

// unmarked functions are outside the deterministic domain.
func unmarked() time.Time { return time.Now() }

// The Byzantine chaos builders (chaos.WrongResult and friends) are
// builder functions returning handler closures; the mark on the builder
// covers the returned literal, so a closure that fabricates its lies
// from seeded draws and pure hashing passes, while one that consults
// the wall clock or the global generator is flagged inside the literal.

//pando:deterministic
func fabricate(key int64, input []byte) []byte {
	h := uint64(14695981039346656037) ^ uint64(key)
	for i := 0; i < len(input); i++ {
		h ^= uint64(input[i])
		h *= 1099511628211
	}
	return []byte{byte(h)}
}

//pando:deterministic
func cheaterBuilder(seed int64) func([]byte) []byte {
	r := rand.New(rand.NewSource(seed))
	return func(input []byte) []byte {
		if r.Intn(2) == 0 { // seeded draw threaded through the closure: fine
			return fabricate(seed, input)
		}
		return input
	}
}

//pando:deterministic
func sloppyCheaterBuilder() func([]byte) []byte {
	return func(input []byte) []byte {
		key := time.Now().UnixNano() // want `wall clock read \(time.Now\) in deterministic function`
		_ = rand.Int()               // want `global rand.Int in deterministic function`
		return fabricate(key, input)
	}
}
