// Package pullstream is a faithful Go port of the pull-stream design
// pattern that Pando's implementation is organized around (paper §2.4.2,
// Figures 5 and 6).
//
// The callback protocol consists of a request followed by an answer. A
// request may ask for a value (abort == nil), abort the stream normally
// (abort == ErrAborted or ErrDone), or fail because of an error (any other
// non-nil abort). Symmetrically the answer may produce a value (end == nil),
// signify the end of the stream (end == ErrDone), or stop because of an
// error (any other non-nil end).
//
// A Source is a function that answers one request at a time: a caller must
// not issue a new request before the previous request has been answered.
// A Sink consumes a Source until it is done. A Through transforms a Source
// into another Source; pipelines are built by ordinary function
// composition, mirroring pull(source, through..., sink) in JavaScript.
package pullstream

import (
	"errors"
	"fmt"
)

// ErrDone is the sentinel "end" signal of the pull-stream protocol. It is
// the Go rendering of the JavaScript protocol's literal `true`: a source
// answers (ErrDone, zero) when the stream terminated normally, and a caller
// requests with abort == ErrDone to shut a source down without error.
var ErrDone = errors.New("pullstream: done")

// ErrAborted is returned by sources that were aborted by a downstream
// request before producing all of their values.
var ErrAborted = errors.New("pullstream: aborted")

// IsEnd reports whether an answer's end signal terminates the stream,
// normally or otherwise.
func IsEnd(end error) bool { return end != nil }

// IsNormalEnd reports whether end is a normal termination (done or
// aborted) rather than a failure.
func IsNormalEnd(end error) bool {
	return errors.Is(end, ErrDone) || errors.Is(end, ErrAborted)
}

// Callback answers a single request. end == nil delivers v; end == ErrDone
// signals normal termination; any other error signals failure.
type Callback[T any] func(end error, v T)

// Source answers requests one at a time. abort == nil asks for the next
// value; a non-nil abort instructs the source to release its resources and
// answer with a non-nil end (conventionally the same abort value).
type Source[T any] func(abort error, cb Callback[T])

// Sink consumes a source until it is done.
type Sink[T any] func(src Source[T])

// Through transforms a source of I into a source of O.
type Through[I, O any] func(src Source[I]) Source[O]

// Duplex pairs a Source and a Sink, representing one endpoint of a
// bidirectional stream such as a network channel or a StreamLender
// sub-stream (paper Figure 9).
type Duplex[In, Out any] struct {
	// Sink consumes the values flowing into this endpoint.
	Sink Sink[In]
	// Source produces the values flowing out of this endpoint.
	Source Source[Out]
}

// answer carries one protocol answer through a channel.
type answer[T any] struct {
	end error
	v   T
}

// await issues a single request against src and blocks until it is
// answered. It is the bridge from the callback protocol to Go's
// synchronous style and underpins Drain, Collect and friends.
func await[T any](src Source[T], abort error) (T, error) {
	ch := make(chan answer[T], 1)
	src(abort, func(end error, v T) {
		ch <- answer[T]{end: end, v: v}
	})
	a := <-ch
	return a.v, a.end
}

// Count returns a source that lazily counts from 1 to n, mirroring the
// source of the paper's Figure 5.
func Count(n int) Source[int] {
	i := 0
	return func(abort error, cb Callback[int]) {
		if abort != nil {
			cb(abort, 0)
			return
		}
		if i >= n {
			cb(ErrDone, 0)
			return
		}
		i++
		cb(nil, i)
	}
}

// Values returns a source producing the given values in order.
func Values[T any](vs ...T) Source[T] {
	i := 0
	return func(abort error, cb Callback[T]) {
		var zero T
		if abort != nil {
			cb(abort, zero)
			return
		}
		if i >= len(vs) {
			cb(ErrDone, zero)
			return
		}
		v := vs[i]
		i++
		cb(nil, v)
	}
}

// Empty returns a source that is immediately done.
func Empty[T any]() Source[T] {
	return func(abort error, cb Callback[T]) {
		var zero T
		if abort != nil {
			cb(abort, zero)
			return
		}
		cb(ErrDone, zero)
	}
}

// Error returns a source that immediately fails with err.
func Error[T any](err error) Source[T] {
	return func(abort error, cb Callback[T]) {
		var zero T
		if abort != nil {
			cb(abort, zero)
			return
		}
		cb(err, zero)
	}
}

// Infinite returns an unbounded source whose i-th answer (0-based) is
// gen(i). It demonstrates the programming model's support for infinite
// streams (paper §2.3).
func Infinite[T any](gen func(i int) T) Source[T] {
	i := 0
	return func(abort error, cb Callback[T]) {
		if abort != nil {
			var zero T
			cb(abort, zero)
			return
		}
		v := gen(i)
		i++
		cb(nil, v)
	}
}

// Drain consumes src, invoking each for every value, until the source is
// done. If each returns a non-nil error the source is aborted with that
// error and the error is returned. A nil each discards the values.
func Drain[T any](src Source[T], each func(T) error) error {
	for {
		v, end := await(src, nil)
		if end != nil {
			if IsNormalEnd(end) {
				return nil
			}
			return end
		}
		if each == nil {
			continue
		}
		if err := each(v); err != nil {
			_, abortEnd := await(src, err)
			if abortEnd != nil && !IsNormalEnd(abortEnd) && !errors.Is(abortEnd, err) {
				return fmt.Errorf("%w (abort also failed: %v)", err, abortEnd)
			}
			return err
		}
	}
}

// Collect consumes src and returns all of its values.
func Collect[T any](src Source[T]) ([]T, error) {
	var out []T
	err := Drain(src, func(v T) error {
		out = append(out, v)
		return nil
	})
	return out, err
}

// Reduce folds src into a single value starting from init.
func Reduce[T, A any](src Source[T], init A, fn func(A, T) A) (A, error) {
	acc := init
	err := Drain(src, func(v T) error {
		acc = fn(acc, v)
		return nil
	})
	return acc, err
}

// First returns the first value of src, then aborts it.
func First[T any](src Source[T]) (T, error) {
	v, end := await(src, nil)
	if end != nil {
		var zero T
		if errors.Is(end, ErrDone) {
			return zero, ErrDone
		}
		return zero, end
	}
	// Release the source.
	_, _ = await(src, ErrAborted)
	return v, nil
}

// Map transforms each value of the source with fn.
func Map[I, O any](fn func(I) O) Through[I, O] {
	return func(src Source[I]) Source[O] {
		return func(abort error, cb Callback[O]) {
			src(abort, func(end error, v I) {
				var zero O
				if end != nil {
					cb(end, zero)
					return
				}
				cb(nil, fn(v))
			})
		}
	}
}

// MapErr transforms each value with fn; a non-nil error fails the stream.
func MapErr[I, O any](fn func(I) (O, error)) Through[I, O] {
	return func(src Source[I]) Source[O] {
		failed := false
		return func(abort error, cb Callback[O]) {
			var zero O
			if failed {
				cb(ErrDone, zero)
				return
			}
			src(abort, func(end error, v I) {
				if end != nil {
					cb(end, zero)
					return
				}
				o, err := fn(v)
				if err != nil {
					failed = true
					cb(err, zero)
					return
				}
				cb(nil, o)
			})
		}
	}
}

// AsyncFunc is the worker-side processing function signature of Pando's
// programming interface (paper Figure 2): it receives one input and
// answers exactly once through the callback, either with an error or with
// a result.
type AsyncFunc[I, O any] func(v I, cb func(err error, result O))

// AsyncMap applies an asynchronous function to each value, one value at a
// time, preserving order. It is the port of the async-map module that
// Pando Workers use to apply f (paper Figure 7).
func AsyncMap[I, O any](fn AsyncFunc[I, O]) Through[I, O] {
	return func(src Source[I]) Source[O] {
		return func(abort error, cb Callback[O]) {
			src(abort, func(end error, v I) {
				var zero O
				if end != nil {
					cb(end, zero)
					return
				}
				fn(v, func(err error, result O) {
					if err != nil {
						cb(err, zero)
						return
					}
					cb(nil, result)
				})
			})
		}
	}
}

// Filter keeps only the values for which pred returns true.
func Filter[T any](pred func(T) bool) Through[T, T] {
	return func(src Source[T]) Source[T] {
		var pull func(abort error, cb Callback[T])
		pull = func(abort error, cb Callback[T]) {
			src(abort, func(end error, v T) {
				if end != nil {
					cb(end, v)
					return
				}
				if pred(v) {
					cb(nil, v)
					return
				}
				pull(nil, cb)
			})
		}
		return pull
	}
}

// Take passes through the first n values and then aborts upstream.
func Take[T any](n int) Through[T, T] {
	return func(src Source[T]) Source[T] {
		seen := 0
		ended := false
		return func(abort error, cb Callback[T]) {
			var zero T
			if abort != nil {
				src(abort, func(end error, v T) { cb(end, v) })
				return
			}
			if ended {
				cb(ErrDone, zero)
				return
			}
			if seen >= n {
				ended = true
				src(ErrAborted, func(error, T) {})
				cb(ErrDone, zero)
				return
			}
			src(nil, func(end error, v T) {
				if end != nil {
					ended = true
					cb(end, zero)
					return
				}
				seen++
				cb(nil, v)
			})
		}
	}
}

// TakeWhile passes through values while pred holds, then aborts upstream.
func TakeWhile[T any](pred func(T) bool) Through[T, T] {
	return func(src Source[T]) Source[T] {
		ended := false
		return func(abort error, cb Callback[T]) {
			var zero T
			if abort != nil {
				src(abort, func(end error, v T) { cb(end, v) })
				return
			}
			if ended {
				cb(ErrDone, zero)
				return
			}
			src(nil, func(end error, v T) {
				if end != nil {
					ended = true
					cb(end, zero)
					return
				}
				if !pred(v) {
					ended = true
					src(ErrAborted, func(error, T) {})
					cb(ErrDone, zero)
					return
				}
				cb(nil, v)
			})
		}
	}
}

// Tee invokes observe on every value without altering the stream.
func Tee[T any](observe func(T)) Through[T, T] {
	return Map(func(v T) T {
		observe(v)
		return v
	})
}

// Chain composes two throughs left-to-right.
func Chain[A, B, C any](f Through[A, B], g Through[B, C]) Through[A, C] {
	return func(src Source[A]) Source[C] { return g(f(src)) }
}

// Pipe connects a source to a sink, mirroring pull(source, sink).
func Pipe[T any](src Source[T], sink Sink[T]) { sink(src) }

// DrainSink returns a sink that drains its source with each, reporting the
// terminal state through done (which may be nil).
func DrainSink[T any](each func(T) error, done func(error)) Sink[T] {
	return func(src Source[T]) {
		err := Drain(src, each)
		if done != nil {
			done(err)
		}
	}
}

// FromChan adapts a receive channel into a source. The source ends
// normally when the channel is closed. If errc is non-nil and delivers an
// error before the channel closes, the source fails with it.
func FromChan[T any](ch <-chan T, errc <-chan error) Source[T] {
	var ended error
	return func(abort error, cb Callback[T]) {
		var zero T
		if abort != nil {
			ended = abort
			cb(abort, zero)
			return
		}
		if ended != nil {
			cb(ended, zero)
			return
		}
		if errc == nil {
			v, ok := <-ch
			if !ok {
				ended = ErrDone
				cb(ErrDone, zero)
				return
			}
			cb(nil, v)
			return
		}
		select {
		case v, ok := <-ch:
			if !ok {
				ended = ErrDone
				cb(ErrDone, zero)
				return
			}
			cb(nil, v)
		case err := <-errc:
			if err == nil {
				err = ErrDone
			}
			ended = err
			cb(err, zero)
		}
	}
}

// ToChan drains src into a newly created channel. The channel is closed
// when the source ends; a failure is delivered on the returned error
// channel (capacity 1).
func ToChan[T any](src Source[T]) (<-chan T, <-chan error) {
	out := make(chan T)
	errc := make(chan error, 1)
	go func() {
		defer close(out)
		err := Drain(src, func(v T) error {
			out <- v
			return nil
		})
		if err != nil && !IsNormalEnd(err) {
			errc <- err
		}
		close(errc)
	}()
	return out, errc
}

// Concat concatenates several sources into one.
func Concat[T any](srcs ...Source[T]) Source[T] {
	idx := 0
	return func(abort error, cb Callback[T]) {
		var zero T
		if abort != nil {
			if idx < len(srcs) {
				srcs[idx](abort, func(end error, v T) { cb(end, v) })
				return
			}
			cb(abort, zero)
			return
		}
		var pull func()
		pull = func() {
			if idx >= len(srcs) {
				cb(ErrDone, zero)
				return
			}
			srcs[idx](nil, func(end error, v T) {
				if errors.Is(end, ErrDone) {
					idx++
					pull()
					return
				}
				if end != nil {
					cb(end, zero)
					return
				}
				cb(nil, v)
			})
		}
		pull()
	}
}
