package pullstream

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestGroupExactMultiple(t *testing.T) {
	got, err := Collect(Group[int](3)(Count(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d groups", len(got))
	}
	if got[0][0] != 1 || got[2][2] != 9 {
		t.Fatalf("groups = %v", got)
	}
}

func TestGroupRemainder(t *testing.T) {
	got, err := Collect(Group[int](4)(Count(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d groups", len(got))
	}
	if len(got[2]) != 2 {
		t.Fatalf("last group = %v, want 2 elements", got[2])
	}
}

func TestGroupEmpty(t *testing.T) {
	got, err := Collect(Group[int](4)(Empty[int]()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestGroupErrorAfterPartial(t *testing.T) {
	boom := errors.New("boom")
	src := Concat(Count(5), Error[int](boom))
	got, err := Collect(Group[int](3)(src))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The partial group before the failure is still delivered.
	if len(got) != 2 || len(got[1]) != 2 {
		t.Fatalf("groups = %v", got)
	}
}

func TestFlattenInverseOfGroup(t *testing.T) {
	th := Chain(Group[int](4), Flatten[int]())
	got, err := Collect(th(Count(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestQuickGroupFlattenRoundTrip(t *testing.T) {
	f := func(vs []int16, n uint8) bool {
		size := int(n%7) + 1
		th := Chain(Group[int16](size), Flatten[int16]())
		got, err := Collect(th(Values(vs...)))
		if err != nil {
			return false
		}
		if len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenSkipsEmptySlices(t *testing.T) {
	src := Values([]int{}, []int{1}, []int{}, []int{2, 3}, []int{})
	got, err := Collect(Flatten[int]()(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestUnique(t *testing.T) {
	src := Values(1, 2, 1, 3, 2, 4)
	got, err := Collect(Unique(func(v int) int { return v })(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestCountValues(t *testing.T) {
	var mu sync.Mutex
	n := 0
	if _, err := Collect(CountValues[int](&n, &mu)(Count(17))); err != nil {
		t.Fatal(err)
	}
	if n != 17 {
		t.Fatalf("counted %d", n)
	}
}

func TestBufferDelivery(t *testing.T) {
	got, err := Collect(Buffer[int](4)(Count(20)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d (order must be preserved)", i, v)
		}
	}
}

func TestBufferEagerlyReadsAhead(t *testing.T) {
	var mu sync.Mutex
	reads := 0
	src := func(abort error, cb Callback[int]) {
		if abort != nil {
			cb(abort, 0)
			return
		}
		mu.Lock()
		reads++
		r := reads
		mu.Unlock()
		if r > 10 {
			cb(ErrDone, 0)
			return
		}
		cb(nil, r)
	}
	out := Buffer[int](8)(src)
	// Pull a single value; the eager reader runs ahead regardless.
	v, err := First(out)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("v = %d", v)
	}
	// The eager goroutine reads to completion on its own; wait for it.
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		r := reads
		mu.Unlock()
		if r >= 2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("reads = %d; buffer did not read ahead", r)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestBufferPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	src := Concat(Count(3), Error[int](boom))
	got, err := Collect(Buffer[int](2)(src))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestLast(t *testing.T) {
	v, err := Last(Count(42))
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("v = %d", v)
	}
	if _, err := Last(Empty[int]()); !errors.Is(err, ErrStreamEmpty) {
		t.Fatalf("err = %v, want ErrStreamEmpty", err)
	}
}

func TestInterleaveAlternates(t *testing.T) {
	got, err := Collect(Interleave(Values(1, 3, 5), Values(2, 4, 6)))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestInterleaveUnevenLengths(t *testing.T) {
	got, err := Collect(Interleave(Values(1), Values(2, 4, 6, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestInterleaveEmpty(t *testing.T) {
	got, err := Collect(Interleave[int]())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestInterleavePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Collect(Interleave(Count(3), Error[int](boom)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
