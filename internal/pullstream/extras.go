package pullstream

import (
	"errors"
	"sync"
)

// This file ports additional modules from the pull-stream ecosystem
// (paper §2.4.2: "a community has grown around the pattern and more than
// a hundred modules have been contributed") that are useful when building
// Pando-style pipelines: grouping values into batches, flattening them
// back, deduplicating, counting, and buffering between a fast producer
// and a slow consumer.

// Group collects values into slices of size n (the last group may be
// shorter). It is the input-batching building block: several values can
// then travel in one network message.
func Group[T any](n int) Through[T, []T] {
	if n < 1 {
		n = 1
	}
	return func(src Source[T]) Source[[]T] {
		ended := false
		var endErr error
		return func(abort error, cb Callback[[]T]) {
			if abort != nil {
				src(abort, func(end error, _ T) { cb(end, nil) })
				return
			}
			if ended {
				e := endErr
				if e == nil {
					e = ErrDone
				}
				cb(e, nil)
				return
			}
			group := make([]T, 0, n)
			var pull func()
			pull = func() {
				src(nil, func(end error, v T) {
					if end != nil {
						ended = true
						if !IsNormalEnd(end) {
							endErr = end
						}
						if len(group) > 0 {
							cb(nil, group)
							return
						}
						e := endErr
						if e == nil {
							e = ErrDone
						}
						cb(e, nil)
						return
					}
					group = append(group, v)
					if len(group) == n {
						cb(nil, group)
						return
					}
					pull()
				})
			}
			pull()
		}
	}
}

// Flatten expands slices back into individual values, the inverse of
// Group.
func Flatten[T any]() Through[[]T, T] {
	return func(src Source[[]T]) Source[T] {
		var pending []T
		return func(abort error, cb Callback[T]) {
			var zero T
			if abort != nil {
				src(abort, func(end error, _ []T) { cb(end, zero) })
				return
			}
			if len(pending) > 0 {
				v := pending[0]
				pending = pending[1:]
				cb(nil, v)
				return
			}
			var pull func()
			pull = func() {
				src(nil, func(end error, vs []T) {
					if end != nil {
						cb(end, zero)
						return
					}
					if len(vs) == 0 {
						pull()
						return
					}
					pending = vs[1:]
					cb(nil, vs[0])
				})
			}
			pull()
		}
	}
}

// Unique drops values whose key has been seen before.
func Unique[T any, K comparable](key func(T) K) Through[T, T] {
	seen := make(map[K]bool)
	return Filter(func(v T) bool {
		k := key(v)
		if seen[k] {
			return false
		}
		seen[k] = true
		return true
	})
}

// CountValues consumes nothing but counts the values that flow through.
func CountValues[T any](counter *int, mu *sync.Mutex) Through[T, T] {
	return Tee(func(T) {
		mu.Lock()
		*counter++
		mu.Unlock()
	})
}

// Buffer decouples a fast producer from a slow consumer with a bounded
// queue of size n, pulling eagerly from upstream on a dedicated goroutine
// (the behaviour the Limiter exists to bound on network channels).
func Buffer[T any](n int) Through[T, T] {
	if n < 1 {
		n = 1
	}
	return func(src Source[T]) Source[T] {
		type item struct {
			v   T
			end error
		}
		ch := make(chan item, n)
		go func() {
			defer close(ch)
			for {
				done := make(chan item, 1)
				src(nil, func(end error, v T) { done <- item{v: v, end: end} })
				it := <-done
				ch <- it
				if it.end != nil {
					return
				}
			}
		}()
		var terminal error
		return func(abort error, cb Callback[T]) {
			var zero T
			if abort != nil {
				// Drain whatever the eager reader produced; upstream will
				// finish on its own. Then answer the abort.
				go func() {
					for range ch {
					}
				}()
				cb(abort, zero)
				return
			}
			if terminal != nil {
				cb(terminal, zero)
				return
			}
			it, ok := <-ch
			if !ok {
				cb(ErrDone, zero)
				return
			}
			if it.end != nil {
				terminal = it.end
				cb(it.end, zero)
				return
			}
			cb(nil, it.v)
		}
	}
}

// ErrStreamEmpty is returned by Last on an empty stream.
var ErrStreamEmpty = errors.New("pullstream: empty stream")

// Last consumes the whole source and returns its final value.
func Last[T any](src Source[T]) (T, error) {
	var last T
	n := 0
	err := Drain(src, func(v T) error {
		last = v
		n++
		return nil
	})
	if err != nil {
		var zero T
		return zero, err
	}
	if n == 0 {
		var zero T
		return zero, ErrStreamEmpty
	}
	return last, nil
}

// Interleave alternates values from several sources until all are done.
// A failing source fails the merged stream. Unlike Concat, it does not
// wait for one source to finish before visiting the next.
func Interleave[T any](srcs ...Source[T]) Source[T] {
	live := make([]Source[T], len(srcs))
	copy(live, srcs)
	next := 0
	return func(abort error, cb Callback[T]) {
		var zero T
		if abort != nil {
			for _, s := range live {
				s(abort, func(error, T) {})
			}
			cb(abort, zero)
			return
		}
		var pull func(tried int)
		pull = func(tried int) {
			if len(live) == 0 {
				cb(ErrDone, zero)
				return
			}
			if tried >= len(live) {
				cb(ErrDone, zero)
				return
			}
			idx := next % len(live)
			src := live[idx]
			src(nil, func(end error, v T) {
				if errors.Is(end, ErrDone) || errors.Is(end, ErrAborted) {
					live = append(live[:idx], live[idx+1:]...)
					pull(tried)
					return
				}
				if end != nil {
					cb(end, zero)
					return
				}
				next = idx + 1
				cb(nil, v)
			})
		}
		pull(0)
	}
}
