package pullstream

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestPullStreamFigure5 reproduces the paper's Figure 5: a source that
// lazily counts from 1 to n connected to a sink that consumes all values.
func TestPullStreamFigure5(t *testing.T) {
	var got []int
	Pipe(Count(10), DrainSink(func(v int) error {
		got = append(got, v)
		return nil
	}, func(err error) {
		if err != nil {
			t.Fatalf("sink finished with error: %v", err)
		}
	}))
	if len(got) != 10 {
		t.Fatalf("got %d values, want 10", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestCountLazy(t *testing.T) {
	src := Count(1000)
	// Only three requests are issued; the source must not run ahead.
	for want := 1; want <= 3; want++ {
		v, end := await(src, nil)
		if end != nil {
			t.Fatalf("unexpected end: %v", end)
		}
		if v != want {
			t.Fatalf("got %d, want %d", v, want)
		}
	}
	if _, end := await(src, ErrAborted); !IsNormalEnd(end) {
		t.Fatalf("abort answer = %v, want normal end", end)
	}
}

func TestValuesAndCollect(t *testing.T) {
	got, err := Collect(Values("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestEmpty(t *testing.T) {
	got, err := Collect(Empty[int]())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestErrorSource(t *testing.T) {
	boom := errors.New("boom")
	_, err := Collect(Error[int](boom))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestInfiniteWithTake(t *testing.T) {
	src := Take[int](5)(Infinite(func(i int) int { return i * i }))
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 4, 9, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTakeAbortsUpstream(t *testing.T) {
	aborted := false
	upstream := func(abort error, cb Callback[int]) {
		if abort != nil {
			aborted = true
			cb(abort, 0)
			return
		}
		cb(nil, 7)
	}
	if _, err := Collect(Take[int](2)(upstream)); err != nil {
		t.Fatal(err)
	}
	if !aborted {
		t.Fatal("Take did not abort its upstream after n values")
	}
}

func TestMap(t *testing.T) {
	got, err := Collect(Map(strconv.Itoa)(Count(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "1" || got[2] != "3" {
		t.Fatalf("got %v", got)
	}
}

func TestMapErrFailsStream(t *testing.T) {
	boom := errors.New("boom")
	th := MapErr(func(v int) (int, error) {
		if v == 2 {
			return 0, boom
		}
		return v * 10, nil
	})
	got, err := Collect(th(Count(5)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("got %v, want [10]", got)
	}
}

func TestAsyncMapOrdering(t *testing.T) {
	// AsyncMap must answer one value at a time in order even when the
	// function answers from another goroutine.
	th := AsyncMap(func(v int, cb func(error, int)) {
		go cb(nil, v*2)
	})
	got, err := Collect(th(Count(100)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d, want %d", i, v, (i+1)*2)
		}
	}
}

func TestAsyncMapError(t *testing.T) {
	boom := errors.New("boom")
	th := AsyncMap(func(v int, cb func(error, int)) {
		if v == 3 {
			cb(boom, 0)
			return
		}
		cb(nil, v)
	})
	got, err := Collect(th(Count(5)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want two values before failure", got)
	}
}

func TestFilter(t *testing.T) {
	even := Filter(func(v int) bool { return v%2 == 0 })
	got, err := Collect(even(Count(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 2 || got[4] != 10 {
		t.Fatalf("got %v", got)
	}
}

func TestTakeWhile(t *testing.T) {
	th := TakeWhile(func(v int) bool { return v < 4 })
	got, err := Collect(th(Count(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestReduce(t *testing.T) {
	sum, err := Reduce(Count(100), 0, func(a, v int) int { return a + v })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5050 {
		t.Fatalf("sum = %d, want 5050", sum)
	}
}

func TestFirst(t *testing.T) {
	v, err := First(Count(10))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("v = %d, want 1", v)
	}
	if _, err := First(Empty[int]()); !errors.Is(err, ErrDone) {
		t.Fatalf("err = %v, want ErrDone", err)
	}
}

func TestChain(t *testing.T) {
	th := Chain(
		Filter(func(v int) bool { return v%2 == 1 }),
		Map(func(v int) string { return fmt.Sprintf("v%d", v) }),
	)
	got, err := Collect(th(Count(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "v1" || got[2] != "v5" {
		t.Fatalf("got %v", got)
	}
}

func TestTee(t *testing.T) {
	var seen int32
	th := Tee(func(int) { atomic.AddInt32(&seen, 1) })
	if _, err := Collect(th(Count(7))); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Fatalf("seen = %d, want 7", seen)
	}
}

func TestFromChanToChan(t *testing.T) {
	in := make(chan int, 3)
	in <- 1
	in <- 2
	in <- 3
	close(in)
	out, errc := ToChan(FromChan(in, nil))
	var got []int
	for v := range out {
		got = append(got, v)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestFromChanError(t *testing.T) {
	boom := errors.New("boom")
	in := make(chan int)
	errs := make(chan error, 1)
	errs <- boom
	_, err := Collect(FromChan(in, errs))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestConcat(t *testing.T) {
	got, err := Collect(Concat(Count(2), Values(10, 11), Empty[int]()))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestConcatPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	got, err := Collect(Concat(Count(2), Error[int](boom), Count(5)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestDrainEachError(t *testing.T) {
	boom := errors.New("boom")
	err := Drain(Count(10), func(v int) error {
		if v == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestCheckerCleanStream(t *testing.T) {
	c := NewChecker[int]()
	if _, err := Collect(c.Wrap(Count(50))); err != nil {
		t.Fatal(err)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if c.Requests() != 51 { // 50 values + done
		t.Fatalf("requests = %d, want 51", c.Requests())
	}
}

func TestCheckerDetectsDoubleAnswer(t *testing.T) {
	c := NewChecker[int]()
	bad := func(abort error, cb Callback[int]) {
		cb(nil, 1)
		cb(nil, 2) // protocol violation: answers the same request twice
	}
	src := c.Wrap(bad)
	src(nil, func(error, int) {})
	found := false
	for _, v := range c.Violations() {
		if v.Kind == "double-answer" {
			found = true
		}
	}
	if !found {
		t.Fatalf("double-answer not detected: %v", c.Violations())
	}
}

func TestCheckerDetectsAnswerAfterEnd(t *testing.T) {
	c := NewChecker[int]()
	i := 0
	bad := func(abort error, cb Callback[int]) {
		i++
		if i == 1 {
			cb(ErrDone, 0)
			return
		}
		cb(nil, 42) // value after end
	}
	src := c.Wrap(bad)
	src(nil, func(error, int) {})
	src(nil, func(error, int) {})
	var kinds []string
	for _, v := range c.Violations() {
		kinds = append(kinds, v.Kind)
	}
	if len(kinds) == 0 {
		t.Fatal("no violations detected")
	}
}

// QuickCheck property: for any slice, Collect(Values(...)) round-trips.
func TestQuickValuesRoundTrip(t *testing.T) {
	f := func(vs []int64) bool {
		got, err := Collect(Values(vs...))
		if err != nil {
			return false
		}
		if len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// QuickCheck property: Map(f) over Values == mapping the slice.
func TestQuickMapHomomorphism(t *testing.T) {
	f := func(vs []int32) bool {
		double := Map(func(v int32) int64 { return int64(v) * 2 })
		got, err := Collect(double(Values(vs...)))
		if err != nil {
			return false
		}
		for i := range vs {
			if got[i] != int64(vs[i])*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// QuickCheck property: Take(n) yields min(n, len) values.
func TestQuickTakeLength(t *testing.T) {
	f := func(vs []int, n uint8) bool {
		got, err := Collect(Take[int](int(n))(Values(vs...)))
		if err != nil {
			return false
		}
		want := len(vs)
		if int(n) < want {
			want = int(n)
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// QuickCheck property: Filter ∘ Collect == slice filter.
func TestQuickFilterEquivalence(t *testing.T) {
	pred := func(v int16) bool { return v%3 == 0 }
	f := func(vs []int16) bool {
		got, err := Collect(Filter(pred)(Values(vs...)))
		if err != nil {
			return false
		}
		var want []int16
		for _, v := range vs {
			if pred(v) {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
