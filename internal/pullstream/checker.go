package pullstream

import (
	"fmt"
	"sync"
)

// Violation describes a breach of the pull-stream callback protocol
// observed by a Checker.
type Violation struct {
	// Kind is one of "concurrent-request", "answer-after-end",
	// "double-answer" or "request-after-end".
	Kind string
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Checker validates the pull-stream protocol invariants on the boundary
// between two modules. It is the mechanism behind the paper's
// "StreamLender test" application (§4.1), which performs random executions
// to find protocol violations.
type Checker[T any] struct {
	mu         sync.Mutex
	inFlight   bool
	ended      bool
	requests   int
	answers    int
	violations []Violation
}

// NewChecker returns an empty checker ready for use.
func NewChecker[T any]() *Checker[T] { return &Checker[T]{} }

// Violations returns all violations recorded so far.
func (c *Checker[T]) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// Requests returns how many requests passed through the checker.
func (c *Checker[T]) Requests() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests
}

// Answers returns how many answers passed through the checker.
func (c *Checker[T]) Answers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.answers
}

func (c *Checker[T]) record(kind, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Wrap instruments src, recording any protocol violation committed by
// either side of the boundary.
func (c *Checker[T]) Wrap(src Source[T]) Source[T] {
	return func(abort error, cb Callback[T]) {
		c.mu.Lock()
		c.requests++
		if c.inFlight {
			c.record("concurrent-request",
				"request #%d issued before request #%d was answered",
				c.requests, c.requests-1)
		}
		if c.ended && abort == nil {
			c.record("request-after-end",
				"ask request #%d issued after the stream ended", c.requests)
		}
		c.inFlight = true
		c.mu.Unlock()

		answered := false
		src(abort, func(end error, v T) {
			c.mu.Lock()
			c.answers++
			if answered {
				c.record("double-answer",
					"answer #%d delivered twice", c.answers)
			}
			answered = true
			if c.ended && end == nil {
				c.record("answer-after-end",
					"value answered after the stream ended")
			}
			if end != nil {
				c.ended = true
			}
			c.inFlight = false
			c.mu.Unlock()
			cb(end, v)
		})
	}
}
