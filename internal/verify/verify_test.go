package verify

import (
	"bytes"
	"testing"
)

func dg(s string) Digest { return DigestOf([]byte(s)) }

// TestVoterStateMachine is the table-driven walk of the per-index
// voting machine: each case scripts a ballot sequence and asserts the
// per-step outcomes plus the final resolution state. The "split" and
// "timeout" rows pin that the machine itself never resolves without a
// quorum — breaking a split or abandoning a vote is the lender's job
// (re-lend to a fresh worker), not the machine's.
func TestVoterStateMachine(t *testing.T) {
	type step struct {
		worker string
		digest Digest
		want   Outcome
	}
	a, b, truth := dg("a"), dg("b"), dg("truth")
	cases := []struct {
		name         string
		quorum       int
		steps        []step
		resolveAfter *Digest // force-Resolve after the scripted steps (spot-check override)
		post         []step  // steps after the Resolve
		wantResolved bool
		wantAccepted Digest
		wantDistinct int
	}{
		{
			name:         "quorum reached",
			quorum:       2,
			steps:        []step{{"w1", a, Counted}, {"w2", a, QuorumReached}},
			wantResolved: true,
			wantAccepted: a,
			wantDistinct: 2,
		},
		{
			name:         "split stays pending",
			quorum:       2,
			steps:        []step{{"w1", a, Counted}, {"w2", b, Counted}},
			wantResolved: false,
			wantDistinct: 2,
		},
		{
			name:         "tie broken by third voter",
			quorum:       2,
			steps:        []step{{"w1", a, Counted}, {"w2", b, Counted}, {"w3", b, QuorumReached}},
			wantResolved: true,
			wantAccepted: b,
			wantDistinct: 3,
		},
		{
			name:         "timeout: replica death leaves vote pending",
			quorum:       3,
			steps:        []step{{"w1", a, Counted}, {"w2", a, Counted}},
			wantResolved: false,
			wantDistinct: 2,
		},
		{
			name:   "duplicate digest from same worker counted once",
			quorum: 2,
			steps: []step{
				{"w1", a, Counted},
				{"w1", a, Duplicate}, // speculative duplicate: same voice twice
				{"w1", a, Duplicate},
			},
			wantResolved: false,
			wantDistinct: 1,
		},
		{
			name:   "equivocation: first ballot binds",
			quorum: 2,
			steps: []step{
				{"w1", a, Counted},
				{"w1", b, Duplicate},
				{"w2", a, QuorumReached},
			},
			wantResolved: true,
			wantAccepted: a,
			wantDistinct: 2,
		},
		{
			name:   "late votes classified against accepted digest",
			quorum: 2,
			steps: []step{
				{"w1", a, Counted},
				{"w2", a, QuorumReached},
				{"w3", a, LateAgree},
				{"w4", b, LateDisagree},
			},
			wantResolved: true,
			wantAccepted: a,
			wantDistinct: 4,
		},
		{
			name:   "spot-check mismatch overrides an already-quorumed result",
			quorum: 2,
			steps: []step{
				{"w1", a, Counted},
				{"w2", a, QuorumReached}, // two cheaters agree...
			},
			resolveAfter: &truth, // ...the spot-check recomputation wins
			post: []step{
				{"w3", truth, LateAgree},
				{"w4", a, LateDisagree},
			},
			wantResolved: true,
			wantAccepted: truth,
			wantDistinct: 4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewVoter(tc.quorum)
			for i, s := range tc.steps {
				if got := v.Add(s.worker, s.digest); got != s.want {
					t.Fatalf("step %d (%s votes %s): outcome = %v, want %v", i, s.worker, s.digest, got, s.want)
				}
			}
			if tc.resolveAfter != nil {
				v.Resolve(*tc.resolveAfter)
			}
			for i, s := range tc.post {
				if got := v.Add(s.worker, s.digest); got != s.want {
					t.Fatalf("post step %d (%s votes %s): outcome = %v, want %v", i, s.worker, s.digest, got, s.want)
				}
			}
			acc, ok := v.Accepted()
			if ok != tc.wantResolved {
				t.Fatalf("resolved = %v, want %v", ok, tc.wantResolved)
			}
			if ok && acc != tc.wantAccepted {
				t.Fatalf("accepted = %s, want %s", acc, tc.wantAccepted)
			}
			if v.Distinct() != tc.wantDistinct {
				t.Fatalf("distinct voters = %d, want %d", v.Distinct(), tc.wantDistinct)
			}
		})
	}
}

func TestVoterParticipated(t *testing.T) {
	v := NewVoter(2)
	v.Add("w1", dg("x"))
	if !v.Participated("w1") {
		t.Fatal("w1 should have participated")
	}
	if v.Participated("w2") {
		t.Fatal("w2 has not voted yet")
	}
	if v.Count(dg("x")) != 1 {
		t.Fatalf("count = %d, want 1", v.Count(dg("x")))
	}
}

func TestPolicyNormalize(t *testing.T) {
	p := Policy{K: 1, Quorum: 3, SpotRate: 2}.Normalize()
	if p.K != 3 {
		t.Fatalf("K = %d, want 3 (raised to quorum)", p.K)
	}
	if p.SpotRate != 1 {
		t.Fatalf("SpotRate = %v, want clamped to 1", p.SpotRate)
	}
	if p.InitialScore != DefaultInitialScore || p.QuarantineBelow != DefaultQuarantineBelow {
		t.Fatalf("defaults not filled: %+v", p)
	}
	z := Policy{}.Normalize()
	if z.K != 1 || z.Quorum != 1 {
		t.Fatalf("zero policy should normalize to k=1 quorum=1, got %+v", z)
	}
}

func TestLedgerScoreDynamics(t *testing.T) {
	l := NewLedger(Policy{K: 2, Quorum: 2, TrustThreshold: 0.6})
	var expelled []string
	l.OnQuarantine(func(name string) { expelled = append(expelled, name) })

	// Sustained agreement approaches 1 and crosses the trust threshold.
	for i := 0; i < 12; i++ {
		l.Record("honest", true)
	}
	if !l.Trusted("honest") {
		t.Fatalf("honest worker should be trusted after 12 agreements: %+v", l.Snapshot()["honest"])
	}

	// Two disagreements from the initial score cross the quarantine line.
	l.Record("cheat", false)
	if l.Quarantined("cheat") {
		t.Fatal("one disagreement should not quarantine yet")
	}
	l.Record("cheat", false)
	if !l.Quarantined("cheat") {
		t.Fatalf("two disagreements should quarantine: %+v", l.Snapshot()["cheat"])
	}
	if len(expelled) != 1 || expelled[0] != "cheat" {
		t.Fatalf("quarantine hook fired %v, want [cheat] exactly once", expelled)
	}
	l.Record("cheat", false) // further decay must not re-fire the hook
	if len(expelled) != 1 {
		t.Fatalf("quarantine hook re-fired: %v", expelled)
	}

	// A trusted worker caught by a spot-check loses trust immediately.
	l.Record("honest", false)
	if l.Trusted("honest") {
		t.Fatal("one disagreement should drop a worker below the trust threshold")
	}
}

func TestLedgerCredit(t *testing.T) {
	l := NewLedger(Policy{K: 2, Quorum: 2})
	if got := l.Credit("stranger"); got != 1 {
		t.Fatalf("unknown worker credit = %v, want 1 (no evidence is not evidence)", got)
	}
	l.Record("suspect", false)
	if got := l.Credit("suspect"); got != 0.25 {
		t.Fatalf("suspect credit = %v, want floor 0.25", got)
	}
	l.Record("expelled", false)
	l.Record("expelled", false)
	if got := l.Credit("expelled"); got != 0 {
		t.Fatalf("quarantined credit = %v, want 0", got)
	}
	for i := 0; i < 20; i++ {
		l.Record("veteran", true)
	}
	if got := l.Credit("veteran"); got != 1 {
		t.Fatalf("veteran credit = %v, want 1", got)
	}
}

func TestLedgerAcceptances(t *testing.T) {
	l := NewLedger(Policy{K: 2, Quorum: 2})
	l.NoteAcceptance(Acceptance{Idx: 0, Digest: dg("r"), Votes: 2, Workers: []string{"b", "a"}})
	l.NoteAcceptance(Acceptance{Idx: 1, Digest: dg("s"), Votes: 1, Workers: []string{"t"}, FastPath: true, SpotChecked: true})
	acc := l.Acceptances()
	if len(acc) != 2 {
		t.Fatalf("acceptances = %d, want 2", len(acc))
	}
	if acc[0].Workers[0] != "a" || acc[0].Workers[1] != "b" {
		t.Fatalf("workers not sorted: %v", acc[0].Workers)
	}
	rep := l.Snapshot()["t"]
	if rep.SpotChecks != 1 || rep.SpotFails != 0 {
		t.Fatalf("spot accounting = %+v, want 1 check 0 fails", rep)
	}
}

func TestSamplerDeterministicRate(t *testing.T) {
	s := Sampler(0.25)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if s(i) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("sample rate = %v, want ~0.25", rate)
	}
	// Same index, same decision — a resumed run spot-checks identically.
	for i := 0; i < 100; i++ {
		if s(i) != s(i) {
			t.Fatalf("sampler not deterministic at %d", i)
		}
	}
	if off := Sampler(0); off(3) {
		t.Fatal("rate 0 must never sample")
	}
	if on := Sampler(1); !on(3) {
		t.Fatal("rate 1 must always sample")
	}
}

func TestParseDigest(t *testing.T) {
	want := DigestOf([]byte("payload"))
	got, err := ParseDigest(want[:])
	if err != nil || got != want {
		t.Fatalf("round-trip failed: %v %v", got, err)
	}
	if _, err := ParseDigest(want[:31]); err == nil {
		t.Fatal("truncated digest must not parse")
	}
	if _, err := ParseDigest(append(want[:], 0)); err == nil {
		t.Fatal("oversized digest must not parse")
	}
	if _, err := ParseDigest(nil); err == nil {
		t.Fatal("nil digest must not parse")
	}
}

// FuzzVoteDigest throws malformed, truncated and hostile digest
// payloads at the parse-then-vote path: whatever the bytes, parsing
// either rejects them or yields a digest that votes consistently — a
// malformed payload must never resolve a voter, and a parsed one must
// round-trip byte-exactly.
func FuzzVoteDigest(f *testing.F) {
	good := DigestOf([]byte("seed"))
	f.Add(good[:])
	f.Add(good[:16])                      // truncated
	f.Add([]byte{})                       // empty
	f.Add([]byte{0x8D})                   // the wire tag byte itself, not a digest
	f.Add(bytes.Repeat([]byte{0xFF}, 33)) // oversized
	f.Add(bytes.Repeat([]byte{0x00}, 32)) // all-zero, valid length
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := ParseDigest(raw)
		if err != nil {
			if len(raw) == 32 {
				t.Fatalf("32-byte payload rejected: %v", err)
			}
			return
		}
		if len(raw) != 32 || !bytes.Equal(d[:], raw) {
			t.Fatalf("parsed digest does not round-trip: %x vs %x", d[:], raw)
		}
		v := NewVoter(2)
		if out := v.Add("w1", d); out != Counted {
			t.Fatalf("first vote = %v, want Counted", out)
		}
		if _, ok := v.Accepted(); ok {
			t.Fatal("single vote must not resolve a quorum-2 voter")
		}
		if out := v.Add("w1", d); out != Duplicate {
			t.Fatal("re-vote must be a duplicate")
		}
		if out := v.Add("w2", d); out != QuorumReached {
			t.Fatalf("second distinct vote = %v, want QuorumReached", out)
		}
		acc, ok := v.Accepted()
		if !ok || acc != d {
			t.Fatal("accepted digest must be the voted one")
		}
	})
}
