// Package verify implements Byzantine-tolerant result verification for
// open volunteer fleets: k-replicated execution with quorum voting on
// SHA-256 result digests, probabilistic spot-checking, and a per-worker
// reputation ledger whose score feeds the scheduler's credit window.
//
// The design follows BOINC-style redundant execution (Anderson & Fedak):
// the master cannot recompute every result itself, so it sends each input
// to k distinct workers and accepts the result only once quorum of them
// return byte-identical output (compared by digest). Workers that agree
// with accepted results earn reputation; workers that disagree lose it
// multiplicatively, and below a quarantine line they are expelled from
// the fleet. Workers above a trust threshold earn a replication-free
// fast-path — their results are accepted on arrival, with a sampled
// fraction spot-checked by local recomputation — which is what keeps
// verification overhead off the steady-state throughput path.
//
// The package is a leaf: pure data structures plus crypto/sha256, so the
// voting state machine is unit-testable without a fleet.
package verify

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Digest is the SHA-256 of an encoded result payload. Votes compare
// digests, not payloads: two workers voted together iff their encoded
// results are byte-identical.
type Digest [sha256.Size]byte

// DigestOf hashes an encoded result payload.
func DigestOf(data []byte) Digest { return sha256.Sum256(data) }

// String renders a short hex prefix for logs and errors.
func (d Digest) String() string { return hex.EncodeToString(d[:8]) }

// ParseDigest validates a wire-carried digest. Anything but exactly 32
// bytes is malformed — truncated digests must never alias a real one.
func ParseDigest(b []byte) (Digest, error) {
	var d Digest
	if len(b) != sha256.Size {
		return d, fmt.Errorf("verify: digest must be %d bytes, got %d", sha256.Size, len(b))
	}
	copy(d[:], b)
	return d, nil
}

// Policy tunes the verification layer.
type Policy struct {
	// K is the replication factor: how many distinct workers each input
	// is sent to while the submitting worker is untrusted.
	K int
	// Quorum is how many distinct workers must return byte-identical
	// results before one is accepted. Quorum <= K.
	Quorum int
	// SpotRate is the fraction of accepted results the master recomputes
	// locally and compares (0 disables spot-checking). Spot checks are
	// what keeps the trusted fast-path honest.
	SpotRate float64
	// TrustThreshold is the reputation score at or above which a worker's
	// results are accepted without replication (0 disables the
	// fast-path: every result goes through quorum).
	TrustThreshold float64
	// QuarantineBelow is the score under which a worker is expelled.
	QuarantineBelow float64
	// InitialScore is where an unknown worker starts.
	InitialScore float64
}

// Default score dynamics: a fresh worker starts neutral, one
// disagreement drops it to the quarantine line, a second expels it, and
// sustained agreement asymptotically approaches 1.
const (
	DefaultInitialScore    = 0.2
	DefaultQuarantineBelow = 0.05
	agreeGain              = 0.15 // s += (1-s) * agreeGain
	disagreeDecay          = 0.25 // s *= disagreeDecay
)

// Normalize fills defaults and repairs impossible combinations: quorum
// at least 1, k at least quorum.
func (p Policy) Normalize() Policy {
	if p.Quorum < 1 {
		p.Quorum = 1
	}
	if p.K < p.Quorum {
		p.K = p.Quorum
	}
	if p.InitialScore <= 0 {
		p.InitialScore = DefaultInitialScore
	}
	if p.QuarantineBelow <= 0 {
		p.QuarantineBelow = DefaultQuarantineBelow
	}
	if p.SpotRate < 0 {
		p.SpotRate = 0
	}
	if p.SpotRate > 1 {
		p.SpotRate = 1
	}
	return p
}

// Outcome classifies one Add call on a Voter.
type Outcome int

const (
	// Counted: a fresh vote, quorum not yet reached.
	Counted Outcome = iota
	// QuorumReached: this vote completed the quorum; the voter resolved.
	QuorumReached
	// Duplicate: the worker had already voted on this index — several
	// sub-streams of one device, or a speculative duplicate, must count
	// as one voice. The first ballot binds; this one is discarded.
	Duplicate
	// LateAgree: a vote arriving after resolution that matches the
	// accepted digest.
	LateAgree
	// LateDisagree: a vote arriving after resolution that contradicts
	// the accepted digest.
	LateDisagree
)

func (o Outcome) String() string {
	switch o {
	case Counted:
		return "counted"
	case QuorumReached:
		return "quorum-reached"
	case Duplicate:
		return "duplicate"
	case LateAgree:
		return "late-agree"
	case LateDisagree:
		return "late-disagree"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Voter is the per-index voting state machine: ballots keyed by worker
// name (so replicas of one device collapse to one voice), tallies keyed
// by digest, resolution at quorum. It is not safe for concurrent use;
// the lender drives it under its own lock.
type Voter struct {
	quorum   int
	ballots  map[string]Digest
	counts   map[Digest]int
	resolved bool
	accepted Digest
}

// NewVoter creates a voter requiring `quorum` distinct agreeing workers.
func NewVoter(quorum int) *Voter {
	if quorum < 1 {
		quorum = 1
	}
	return &Voter{
		quorum:  quorum,
		ballots: make(map[string]Digest),
		counts:  make(map[Digest]int),
	}
}

// Add records worker's ballot and reports what happened. A worker votes
// at most once per index: re-votes (same or different digest) are
// Duplicates and do not move the tally. Votes arriving after resolution
// are classified against the accepted digest but never re-open it.
func (v *Voter) Add(worker string, d Digest) Outcome {
	if _, dup := v.ballots[worker]; dup {
		return Duplicate
	}
	v.ballots[worker] = d
	if v.resolved {
		if d == v.accepted {
			return LateAgree
		}
		return LateDisagree
	}
	v.counts[d]++
	if v.counts[d] >= v.quorum {
		v.resolved = true
		v.accepted = d
		return QuorumReached
	}
	return Counted
}

// Resolve forces acceptance of d without a quorum — the trusted
// fast-path, or a spot-check overriding a wrong quorum with the locally
// recomputed truth. It may re-point an already-resolved voter.
func (v *Voter) Resolve(d Digest) {
	v.resolved = true
	v.accepted = d
}

// Accepted reports the accepted digest, if the voter has resolved.
func (v *Voter) Accepted() (Digest, bool) { return v.accepted, v.resolved }

// Count reports how many distinct workers voted for d.
func (v *Voter) Count(d Digest) int { return v.counts[d] }

// Distinct reports how many distinct workers have voted.
func (v *Voter) Distinct() int { return len(v.ballots) }

// Participated reports whether worker has already voted — the lender
// uses it to keep a replica of the same index away from a worker whose
// voice is already in.
func (v *Voter) Participated(worker string) bool {
	_, ok := v.ballots[worker]
	return ok
}

// Ballots snapshots every ballot, for verdict computation at
// finalization.
func (v *Voter) Ballots() map[string]Digest {
	out := make(map[string]Digest, len(v.ballots))
	for w, d := range v.ballots {
		out[w] = d
	}
	return out
}

// Acceptance is the audit record of one verified result: which digest
// won, with how many votes, from whom, and through which path.
type Acceptance struct {
	Idx         int
	Digest      Digest
	Votes       int      // distinct workers that voted for the accepted digest
	Workers     []string // the agreeing workers, sorted
	FastPath    bool     // accepted via the trusted-worker fast-path
	SpotChecked bool     // master recomputed and compared
	SpotFailed  bool     // the recomputation disagreed (result replaced by truth)
}

// WorkerRep is one worker's row in the reputation ledger.
type WorkerRep struct {
	Score       float64
	Agreed      int
	Disagreed   int
	SpotChecks  int
	SpotFails   int
	Quarantined bool
}

// Ledger is the fleet-wide reputation store. It is safe for concurrent
// use; the lender reports verdicts from its completion path while the
// scheduler reads credit weights at attach time.
type Ledger struct {
	mu           sync.Mutex
	pol          Policy
	reps         map[string]*WorkerRep
	onQuarantine func(string)
	acceptances  []Acceptance
}

// NewLedger creates a ledger under pol (normalized).
func NewLedger(pol Policy) *Ledger {
	return &Ledger{
		pol:  pol.Normalize(),
		reps: make(map[string]*WorkerRep),
	}
}

// Policy reports the normalized policy the ledger runs under.
func (l *Ledger) Policy() Policy { return l.pol }

// OnQuarantine installs the expulsion hook, fired (once per worker, on
// the caller's goroutine) when a score crosses below the quarantine
// line. Install it before results flow.
func (l *Ledger) OnQuarantine(fn func(name string)) {
	l.mu.Lock()
	l.onQuarantine = fn
	l.mu.Unlock()
}

func (l *Ledger) rep(name string) *WorkerRep {
	r := l.reps[name]
	if r == nil {
		r = &WorkerRep{Score: l.pol.InitialScore}
		l.reps[name] = r
	}
	return r
}

// Record applies one verdict to worker's score: agreement pulls the
// score toward 1, disagreement decays it multiplicatively (one wrong
// answer erases many right ones — the asymmetry is what makes cheating
// expensive). Crossing below the quarantine line fires the expulsion
// hook once.
func (l *Ledger) Record(worker string, agreed bool) {
	var fire func(string)
	l.mu.Lock()
	r := l.rep(worker)
	if agreed {
		r.Agreed++
		r.Score += (1 - r.Score) * agreeGain
	} else {
		r.Disagreed++
		r.Score *= disagreeDecay
		if r.Score < l.pol.QuarantineBelow && !r.Quarantined {
			r.Quarantined = true
			fire = l.onQuarantine
		}
	}
	l.mu.Unlock()
	if fire != nil {
		fire(worker)
	}
}

// RecordSpot accounts one spot-check against worker (the fast-path
// submitter whose result was recomputed). The pass/fail verdict itself
// still goes through Record.
func (l *Ledger) RecordSpot(worker string, failed bool) {
	l.mu.Lock()
	r := l.rep(worker)
	r.SpotChecks++
	if failed {
		r.SpotFails++
	}
	l.mu.Unlock()
}

// Trusted reports whether worker has earned the replication-free
// fast-path. A zero threshold disables the fast-path entirely.
func (l *Ledger) Trusted(worker string) bool {
	if l.pol.TrustThreshold <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.reps[worker]
	return r != nil && !r.Quarantined && r.Score >= l.pol.TrustThreshold
}

// Quarantined reports whether worker has been expelled.
func (l *Ledger) Quarantined(worker string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.reps[worker]
	return r != nil && r.Quarantined
}

// Credit maps worker's reputation onto a scheduler credit weight in
// [0, 1]: an unknown worker gets full credit (no evidence is not
// evidence of cheating), a quarantined one gets none, and a worker
// under suspicion has its window shrunk so a cheater's blast radius —
// how many in-flight results it can poison — shrinks with its score.
func (l *Ledger) Credit(worker string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.reps[worker]
	if r == nil {
		return 1
	}
	if r.Quarantined {
		return 0
	}
	w := r.Score / l.pol.InitialScore
	if w > 1 {
		w = 1
	}
	if w < 0.25 {
		w = 0.25
	}
	return w
}

// Snapshot copies the ledger for /stats.
func (l *Ledger) Snapshot() map[string]WorkerRep {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]WorkerRep, len(l.reps))
	for name, r := range l.reps {
		out[name] = *r
	}
	return out
}

// NoteAcceptance appends one audit record (workers sorted for
// determinism) and folds its spot-check accounting into the submitting
// workers' rows.
func (l *Ledger) NoteAcceptance(a Acceptance) {
	sort.Strings(a.Workers)
	l.mu.Lock()
	l.acceptances = append(l.acceptances, a)
	if a.SpotChecked {
		for _, w := range a.Workers {
			r := l.rep(w)
			r.SpotChecks++
			if a.SpotFailed {
				r.SpotFails++
			}
		}
	}
	l.mu.Unlock()
}

// Acceptances snapshots the audit trail — chaos.CheckVerified walks it
// to prove every output index went through a verification path.
func (l *Ledger) Acceptances() []Acceptance {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Acceptance(nil), l.acceptances...)
}

// Sampler returns a deterministic index sampler firing at ~rate: the
// decision is a hash of the index, not a wall-clock or global-rand
// draw, so a re-run (or a resumed journal) spot-checks the same
// indices.
func Sampler(rate float64) func(idx int) bool {
	switch {
	case rate <= 0:
		return func(int) bool { return false }
	case rate >= 1:
		return func(int) bool { return true }
	}
	threshold := uint64(rate * float64(1<<32))
	return func(idx int) bool {
		return hashIdx(idx)&0xFFFFFFFF < threshold
	}
}

// hashIdx is FNV-1a over the index's little-endian bytes.
func hashIdx(idx int) uint64 {
	h := uint64(1469598103934665603)
	v := uint64(idx)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 1099511628211
		v >>= 8
	}
	return h
}
