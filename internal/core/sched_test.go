package core

import (
	"testing"
	"time"

	"pando/internal/pullstream"
	"pando/internal/sched"
)

// blackHole is a worker that accepts values but never answers — a stalled
// device that still looks alive. Its Source parks until aborted.
func blackHole() pullstream.Duplex[int, int] {
	abortc := make(chan error, 1)
	return pullstream.Duplex[int, int]{
		Sink: func(src pullstream.Source[int]) {
			for {
				type ans struct{ end error }
				ch := make(chan ans, 1)
				src(nil, func(end error, v int) { ch <- ans{end} })
				if a := <-ch; a.end != nil {
					return
				}
			}
		},
		Source: func(abort error, cb pullstream.Callback[int]) {
			if abort != nil {
				cb(abort, 0)
				return
			}
			end := <-abortc
			cb(end, 0)
		},
	}
}

// echoWorker answers each value with v*2 after delay.
func echoWorker(delay time.Duration) pullstream.Duplex[int, int] {
	pending := make(chan int, 1024)
	endc := make(chan error, 1)
	return pullstream.Duplex[int, int]{
		Sink: func(src pullstream.Source[int]) {
			for {
				type ans struct {
					end error
					v   int
				}
				ch := make(chan ans, 1)
				src(nil, func(end error, v int) { ch <- ans{end, v} })
				a := <-ch
				if a.end != nil {
					endc <- a.end
					close(pending)
					return
				}
				pending <- a.v
			}
		},
		Source: func(abort error, cb pullstream.Callback[int]) {
			if abort != nil {
				cb(abort, 0)
				return
			}
			v, ok := <-pending
			if !ok {
				end := <-endc
				if pullstream.IsNormalEnd(end) {
					end = pullstream.ErrDone
				}
				cb(end, 0)
				return
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			cb(nil, v*2)
		},
	}
}

// TestSpeculationRescuesStalledWorker drives the whole scheduler path
// end-to-end: a stalled worker swallows values without crashing, and
// without speculation the stream could never complete; the straggler scan
// duplicates its values to the healthy worker and the run finishes.
func TestSpeculationRescuesStalledWorker(t *testing.T) {
	d := New[int, int](WithFlow(sched.Policy{Min: 2, Max: 2, Speculation: 3}))
	defer d.Close()
	out := d.Bind(pullstream.Count(30))
	done := make(chan struct{})
	var got []int
	var err error
	go func() {
		got, err = pullstream.Collect(out)
		close(done)
	}()
	if e := d.Attach("stalled", blackHole()); e != nil {
		t.Fatal(e)
	}
	if e := d.Attach("healthy", echoWorker(time.Millisecond)); e != nil {
		t.Fatal(e)
	}
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("stream did not complete: stalled worker's values were never re-dispatched")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d results, want 30", len(got))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d, want %d (ordered, deduplicated)", i, v, (i+1)*2)
		}
	}
	speculated := 0
	for _, f := range d.Flows() {
		if f.Name == "stalled" {
			speculated = f.Speculated
		}
	}
	if speculated == 0 {
		t.Fatal("no values were speculatively re-dispatched from the stalled worker")
	}
}

// TestDefaultFlowMatchesStaticBatch: with no flow options the engine
// behaves exactly like the original static Limiter bound.
func TestDefaultFlowMatchesStaticBatch(t *testing.T) {
	d := New[int, int](WithBatch(3))
	defer d.Close()
	out := d.Bind(pullstream.Count(50))
	done := make(chan struct{})
	var got []int
	var err error
	go func() {
		got, err = pullstream.Collect(out)
		close(done)
	}()
	if e := d.Attach("w", echoWorker(0)); e != nil {
		t.Fatal(e)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d results", len(got))
	}
	for _, f := range d.Flows() {
		if f.Window != 3 {
			t.Fatalf("window = %d, want static 3", f.Window)
		}
		if f.Speculated != 0 {
			t.Fatal("speculation must be off by default")
		}
	}
}
