// Package core implements DistributedMap, the central module of Pando's
// architecture (paper Figure 7): the composition of the StreamLender with
// a per-worker flow-control gate and a duplex channel per participating
// device,
//
//	pull(sub.Source, Gate(ctrl, duplex), sub.Sink)
//
// exposed as a single typed engine. It encapsulates the paper's
// programming model — a streaming map with ordered outputs, lazy reads,
// conservative single-copy lending, adaptive distribution and crash-stop
// fault-tolerance — independently of any deployment concern. Dispatch
// policy lives in the sched subsystem: by default every worker gets the
// paper's static pull-limit (the Limiter of §2.4.3), and WithFlow swaps
// in adaptive per-worker credit windows and speculative re-dispatch of
// straggler values. The master process (internal/master) adds admission
// handshakes, accounting and listeners on top; tests and embedded uses
// can drive the engine directly.
package core

import (
	"errors"
	"sync"
	"time"

	"pando/internal/lender"
	"pando/internal/pullstream"
	"pando/internal/sched"
	"pando/internal/verify"
)

// ErrEngineClosed reports use of a closed engine.
var ErrEngineClosed = errors.New("core: engine closed")

// DistributedMap coordinates the application of a function on a stream of
// values by a dynamically varying set of processors.
type DistributedMap[I, O any] struct {
	s *sched.Scheduler
	l *lender.Lender[I, O]

	mu       sync.Mutex
	closed   bool
	attached int
	live     int
	observer func(Event)
}

// Event describes a lifecycle event of an attached processor, for
// accounting and monitoring.
type Event struct {
	// Kind is "attach", "result" or "detach".
	Kind string
	// Processor is the caller-assigned identifier.
	Processor string
	// Err is the terminal error for detach events (nil for a graceful
	// end).
	Err error
}

// Option configures a DistributedMap.
type Option func(*config)

type config struct {
	policy   sched.Policy
	ordered  bool
	observer func(Event)
}

// WithBatch bounds values in flight per processor with a static window
// (the paper's Limiter bound).
func WithBatch(n int) Option {
	return func(c *config) { c.policy = sched.Static(n) }
}

// WithFlow sets the full per-processor flow-control policy: static or
// adaptive credit windows, and speculative re-dispatch of stragglers.
func WithFlow(p sched.Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithUnordered emits results in completion order.
func WithUnordered() Option { return func(c *config) { c.ordered = false } }

// WithObserver registers a callback invoked on processor lifecycle
// events. The callback must not block.
func WithObserver(fn func(Event)) Option {
	return func(c *config) { c.observer = fn }
}

// Restore seeds the engine with the completed results of a previous run
// (recovered from a durable checkpoint): the journal is consulted before
// lending — restored indices are skipped at the input and their results
// replayed to the output in order, so no processor redoes finished work.
// Call it before Bind.
func (d *DistributedMap[I, O]) Restore(completed map[int]O) {
	d.l.Restore(completed)
}

// OnResult registers the completed-set export hook: fn is invoked for
// every newly accepted (index, result) pair — after speculation dedup, so
// an index fires at most once per run — letting the caller journal it.
// Restored indices do not fire. Call it before Bind; fn must not block.
func (d *DistributedMap[I, O]) OnResult(fn func(idx int, v O)) {
	d.l.OnResult(fn)
}

// BoundMemory caps the engine's buffered-result window at hw results.
// With a store attached (see lender.SetSpill semantics), ordered results
// past the window page out to it and come back exactly when the output
// cursor reaches them; with store == nil the bound propagates as
// backpressure that pauses input reads, so a slow output consumer slows
// the whole pipeline instead of growing the reorder buffer without limit.
// enc/dec map results to stored payloads and may be nil when store is.
// Call before Bind.
func (d *DistributedMap[I, O]) BoundMemory(hw int, store lender.SpillStore, enc func(O) ([]byte, error), dec func([]byte) (O, error)) {
	d.l.SetHighWater(hw)
	if store != nil {
		d.l.SetSpill(store, enc, dec)
	}
}

// MemStats reports buffered results on the heap and parked in the spill
// store.
func (d *DistributedMap[I, O]) MemStats() (heap, spilled int) {
	return d.l.MemStats()
}

// New creates an idle engine.
func New[I, O any](opts ...Option) *DistributedMap[I, O] {
	cfg := config{policy: sched.Static(2), ordered: true}
	for _, o := range opts {
		o(&cfg)
	}
	var lopts []lender.Option
	if !cfg.ordered {
		lopts = append(lopts, lender.Unordered())
	}
	d := &DistributedMap[I, O]{
		l:        lender.New[I, O](lopts...),
		observer: cfg.observer,
	}
	d.s = sched.New(cfg.policy, d.l.IdleAtTail)
	return d
}

// Bind attaches the input stream and returns the output stream.
func (d *DistributedMap[I, O]) Bind(src pullstream.Source[I]) pullstream.Source[O] {
	return d.l.Bind(src)
}

// VerifySpec parameterizes Byzantine-tolerant result verification.
type VerifySpec[I, O any] struct {
	// Policy sets replication degree, quorum, spot-check rate and the
	// reputation thresholds (normalized before use).
	Policy verify.Policy
	// Digest fingerprints a result for voting; two results agree iff
	// their digests are equal. Typically the SHA-256 of the result's
	// wire encoding.
	Digest func(O) (verify.Digest, error)
	// Recompute evaluates the work function locally for spot-checks; nil
	// disables spot-checking regardless of Policy.SpotRate.
	Recompute func(I) (O, error)
}

// EnableVerification turns on k-replication with quorum voting on result
// digests: every lent value is fanned out to Policy.K distinct workers
// (identified by their Attach names — sessions of one device share a
// name and one vote), a result reaches the output and the OnResult hook
// only after Policy.Quorum matching digests from distinct workers, and a
// per-worker reputation ledger tracks agreement. Workers whose score
// crosses Policy.TrustThreshold graduate to a replication-free fast
// path; workers falling below Policy.QuarantineBelow fire the ledger's
// OnQuarantine hook (typically wired to fleet.Pool.Quarantine). The
// ledger's credit weighting also shrinks low-reputation workers' credit
// windows, so suspects drain work before they are formally expelled.
// Call before Bind and before any Attach; the returned ledger exposes
// reputations and the acceptance audit.
func (d *DistributedMap[I, O]) EnableVerification(spec VerifySpec[I, O]) *verify.Ledger {
	pol := spec.Policy.Normalize()
	ledger := verify.NewLedger(pol)
	cfg := &lender.VerifyConfig[I, O]{
		K:       pol.K,
		Quorum:  pol.Quorum,
		Digest:  spec.Digest,
		Trusted: ledger.Trusted,
		OnVerdict: func(worker string, idx int, agreed bool) {
			ledger.Record(worker, agreed)
		},
		OnAccept: ledger.NoteAcceptance,
	}
	if spec.Recompute != nil && pol.SpotRate > 0 {
		cfg.Spot = verify.Sampler(pol.SpotRate)
		cfg.Recompute = spec.Recompute
	}
	d.l.SetVerify(cfg)
	d.s.SetCreditWeight(ledger.Credit)
	return ledger
}

// subHandle adapts a lending sub-stream to the scheduler's view.
type subHandle[I, O any] struct {
	l   *lender.Lender[I, O]
	sub *lender.SubStream
}

func (h subHandle[I, O]) Outstanding() (int, time.Duration) { return h.l.SubInfo(h.sub) }
func (h subHandle[I, O]) Speculate(max int) int             { return h.l.Speculate(h.sub, max) }

// Attach wires one processor, reachable through the given duplex
// endpoint, into the computation: values lent to the processor flow into
// duplex.Sink and its results flow out of duplex.Source, gated by the
// processor's credit controller. It returns ErrEngineClosed after Close.
func (d *DistributedMap[I, O]) Attach(name string, duplex pullstream.Duplex[I, O]) error {
	if err := d.admit(name); err != nil {
		return err
	}
	sub, sd := d.l.LendStreamNamed(name)
	ctrl := d.s.Attach(name, subHandle[I, O]{l: d.l, sub: sub})
	d.watch(name, sd, sched.Gate(ctrl, duplex)(sd.Source), ctrl)
	return nil
}

// AttachVia wires one processor through a caller-supplied Through that
// handles transport and flow bounding itself (used, e.g., by tests that
// exercise custom gating). The scheduler does not manage such
// processors.
func (d *DistributedMap[I, O]) AttachVia(name string, th pullstream.Through[I, O]) error {
	if err := d.admit(name); err != nil {
		return err
	}
	_, sd := d.l.LendStreamNamed(name)
	d.watch(name, sd, th(sd.Source), nil)
	return nil
}

// admit records a new processor, refusing it on a closed engine.
func (d *DistributedMap[I, O]) admit(name string) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrEngineClosed
	}
	d.attached++
	d.live++
	observer := d.observer
	d.mu.Unlock()
	if observer != nil {
		observer(Event{Kind: "attach", Processor: name})
	}
	return nil
}

// watch wires the processor's result stream into its sub-stream sink,
// folding lifecycle events into the observer and releasing the
// processor's controller when the stream ends.
func (d *DistributedMap[I, O]) watch(name string, sd pullstream.Duplex[O, I], results pullstream.Source[O], ctrl *sched.Controller) {
	observer := d.observer
	var gone sync.Once
	watched := func(abort error, cb pullstream.Callback[O]) {
		results(abort, func(end error, v O) {
			if end != nil {
				gone.Do(func() {
					d.mu.Lock()
					d.live--
					d.mu.Unlock()
				})
			}
			if end != nil && ctrl != nil {
				d.s.Detach(ctrl)
			}
			if observer != nil {
				if end == nil {
					observer(Event{Kind: "result", Processor: name})
				} else {
					detachErr := end
					if pullstream.IsNormalEnd(end) {
						detachErr = nil
					}
					observer(Event{Kind: "detach", Processor: name, Err: detachErr})
				}
			}
			cb(end, v)
		})
	}
	sd.Sink(watched)
}

// Attached returns how many processors have been attached over the
// engine's lifetime.
func (d *DistributedMap[I, O]) Attached() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.attached
}

// Live returns how many attached processors are currently serving —
// attachments whose result streams have not ended. A sharded master's
// coordinator reads it (through the fleet's lease accounting) as the
// liveness signal that decides when a shard lost its whole fleet and its
// range should migrate.
func (d *DistributedMap[I, O]) Live() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.live
}

// Stats exposes the coordination counters (values lent, failed queue
// length, sub-streams created and ended).
func (d *DistributedMap[I, O]) Stats() (lentNow, failedQueue, subStreams, ended int) {
	return d.l.Stats()
}

// Backlog reports the engine's appetite for processors (values lent,
// failed values awaiting re-lending, and whether the stream is
// complete); a shared fleet weighs jobs by it when leasing workers.
func (d *DistributedMap[I, O]) Backlog() (outstanding, failed int, complete bool) {
	return d.l.Backlog()
}

// Flows snapshots every scheduler-managed processor's flow-control state
// (credit window, in-flight count, smoothed throughput).
func (d *DistributedMap[I, O]) Flows() []sched.WorkerFlow {
	return d.s.Flows()
}

// Close marks the engine closed; subsequent Attach calls fail. In-flight
// processors finish their streams normally (their controllers close when
// their streams end); only the straggler scan stops immediately.
func (d *DistributedMap[I, O]) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.s.Stop()
}

// Abort fails the engine's merged output from the owner's side: the
// parked output ask (and every future one) answers err immediately,
// releasing a consumer whose remaining results can never arrive (see
// Lender.Abort).
func (d *DistributedMap[I, O]) Abort(err error) { d.l.Abort(err) }
