// Package core implements DistributedMap, the central module of Pando's
// architecture (paper Figure 7): the composition of the StreamLender with
// a Limiter and a duplex channel per participating device,
//
//	pull(sub.Source, Limit(duplex, batch), sub.Sink)
//
// exposed as a single typed engine. It encapsulates the paper's
// programming model — a streaming map with ordered outputs, lazy reads,
// conservative single-copy lending, adaptive distribution and crash-stop
// fault-tolerance — independently of any deployment concern. The master
// process (internal/master) adds admission handshakes, accounting and
// listeners on top; tests and embedded uses can drive the engine
// directly.
package core

import (
	"errors"
	"sync"

	"pando/internal/lender"
	"pando/internal/limiter"
	"pando/internal/pullstream"
)

// ErrEngineClosed reports use of a closed engine.
var ErrEngineClosed = errors.New("core: engine closed")

// DistributedMap coordinates the application of a function on a stream of
// values by a dynamically varying set of processors.
type DistributedMap[I, O any] struct {
	batch int
	l     *lender.Lender[I, O]

	mu       sync.Mutex
	closed   bool
	attached int
	observer func(Event)
}

// Event describes a lifecycle event of an attached processor, for
// accounting and monitoring.
type Event struct {
	// Kind is "attach", "result" or "detach".
	Kind string
	// Processor is the caller-assigned identifier.
	Processor string
	// Err is the terminal error for detach events (nil for a graceful
	// end).
	Err error
}

// Option configures a DistributedMap.
type Option func(*config)

type config struct {
	batch    int
	ordered  bool
	observer func(Event)
}

// WithBatch bounds values in flight per processor (the Limiter bound).
func WithBatch(n int) Option { return func(c *config) { c.batch = n } }

// WithUnordered emits results in completion order.
func WithUnordered() Option { return func(c *config) { c.ordered = false } }

// WithObserver registers a callback invoked on processor lifecycle
// events. The callback must not block.
func WithObserver(fn func(Event)) Option {
	return func(c *config) { c.observer = fn }
}

// New creates an idle engine.
func New[I, O any](opts ...Option) *DistributedMap[I, O] {
	cfg := config{batch: 2, ordered: true}
	for _, o := range opts {
		o(&cfg)
	}
	var lopts []lender.Option
	if !cfg.ordered {
		lopts = append(lopts, lender.Unordered())
	}
	return &DistributedMap[I, O]{
		batch:    cfg.batch,
		l:        lender.New[I, O](lopts...),
		observer: cfg.observer,
	}
}

// Bind attaches the input stream and returns the output stream.
func (d *DistributedMap[I, O]) Bind(src pullstream.Source[I]) pullstream.Source[O] {
	return d.l.Bind(src)
}

// Attach wires one processor, reachable through the given duplex
// endpoint, into the computation: values lent to the processor flow into
// duplex.Sink and its results flow out of duplex.Source, with at most the
// configured batch of values in flight. It returns ErrEngineClosed after
// Close.
func (d *DistributedMap[I, O]) Attach(name string, duplex pullstream.Duplex[I, O]) error {
	return d.AttachVia(name, limiter.Limit(duplex, d.batch))
}

// AttachVia wires one processor through a caller-supplied Through that
// handles transport and flow bounding itself (used, e.g., by the grouped
// data plane, which bounds whole groups in flight).
func (d *DistributedMap[I, O]) AttachVia(name string, th pullstream.Through[I, O]) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrEngineClosed
	}
	d.attached++
	observer := d.observer
	d.mu.Unlock()

	if observer != nil {
		observer(Event{Kind: "attach", Processor: name})
	}
	_, sd := d.l.LendStream()
	results := th(sd.Source)
	watched := func(abort error, cb pullstream.Callback[O]) {
		results(abort, func(end error, v O) {
			if observer != nil {
				if end == nil {
					observer(Event{Kind: "result", Processor: name})
				} else {
					detachErr := end
					if pullstream.IsNormalEnd(end) {
						detachErr = nil
					}
					observer(Event{Kind: "detach", Processor: name, Err: detachErr})
				}
			}
			cb(end, v)
		})
	}
	sd.Sink(watched)
	return nil
}

// Attached returns how many processors have been attached over the
// engine's lifetime.
func (d *DistributedMap[I, O]) Attached() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.attached
}

// Stats exposes the coordination counters (values lent, failed queue
// length, sub-streams created and ended).
func (d *DistributedMap[I, O]) Stats() (lentNow, failedQueue, subStreams, ended int) {
	return d.l.Stats()
}

// Close marks the engine closed; subsequent Attach calls fail. In-flight
// processors finish their streams normally.
func (d *DistributedMap[I, O]) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
}
