package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pando/internal/pullstream"
)

// processorDuplex builds an in-process processor endpoint applying f,
// optionally crashing after crashAfter values.
func processorDuplex[I, O any](f func(I) O, crashAfter int) pullstream.Duplex[I, O] {
	pending := make(chan I, 64)
	fail := make(chan error, 1)
	processed := 0
	return pullstream.Duplex[I, O]{
		Sink: func(src pullstream.Source[I]) {
			for {
				type ans struct {
					end error
					v   I
				}
				ch := make(chan ans, 1)
				src(nil, func(end error, v I) { ch <- ans{end, v} })
				a := <-ch
				if a.end != nil {
					close(pending)
					return
				}
				pending <- a.v
			}
		},
		Source: func(abort error, cb pullstream.Callback[O]) {
			var zero O
			if abort != nil {
				cb(abort, zero)
				return
			}
			select {
			case v, ok := <-pending:
				if !ok {
					cb(pullstream.ErrDone, zero)
					return
				}
				if crashAfter >= 0 && processed >= crashAfter {
					cb(errors.New("processor crashed"), zero)
					return
				}
				processed++
				cb(nil, f(v))
			case err := <-fail:
				cb(err, zero)
			}
		},
	}
}

func TestDistributedMapBasic(t *testing.T) {
	d := New[int, int](WithBatch(2))
	out := d.Bind(pullstream.Count(30))
	if err := d.Attach("p1", processorDuplex(func(v int) int { return v * 3 }, -1)); err != nil {
		t.Fatal(err)
	}
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != (i+1)*3 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestDistributedMapMultipleProcessorsOrdered(t *testing.T) {
	d := New[int, int](WithBatch(2))
	out := d.Bind(pullstream.Count(100))
	for i := 0; i < 3; i++ {
		if err := d.Attach("p", processorDuplex(func(v int) int { return v }, -1)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d (order)", i, v)
		}
	}
	if d.Attached() != 3 {
		t.Fatalf("attached = %d", d.Attached())
	}
}

func TestDistributedMapCrashRecovery(t *testing.T) {
	d := New[int, int](WithBatch(2))
	out := d.Bind(pullstream.Count(40))
	if err := d.Attach("crashy", processorDuplex(func(v int) int { return v }, 4)); err != nil {
		t.Fatal(err)
	}
	if err := d.Attach("steady", processorDuplex(func(v int) int { return v }, -1)); err != nil {
		t.Fatal(err)
	}
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestDistributedMapObserverEvents(t *testing.T) {
	var mu sync.Mutex
	events := map[string]int{}
	d := New[int, int](WithBatch(2), WithObserver(func(ev Event) {
		mu.Lock()
		events[ev.Kind]++
		mu.Unlock()
	}))
	out := d.Bind(pullstream.Count(10))
	if err := d.Attach("p1", processorDuplex(func(v int) int { return v }, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		attach, results, detach := events["attach"], events["result"], events["detach"]
		mu.Unlock()
		if attach == 1 && results == 10 && detach == 1 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("events = attach:%d result:%d detach:%d, want 1/10/1", attach, results, detach)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestDistributedMapObserverDetachErr(t *testing.T) {
	var mu sync.Mutex
	detaches := map[string]error{}
	d := New[int, int](WithBatch(1), WithObserver(func(ev Event) {
		if ev.Kind == "detach" {
			mu.Lock()
			detaches[ev.Processor] = ev.Err
			mu.Unlock()
		}
	}))
	out := d.Bind(pullstream.Count(10))
	if err := d.Attach("crashy", processorDuplex(func(v int) int { return v }, 2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Attach("steady", processorDuplex(func(v int) int { return v }, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		err, ok := detaches["crashy"]
		mu.Unlock()
		if ok {
			if err == nil {
				t.Fatal("crash detach reported nil error")
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("no detach event for the crashed processor")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestDistributedMapAttachAfterClose(t *testing.T) {
	d := New[int, int]()
	d.Close()
	err := d.Attach("late", processorDuplex(func(v int) int { return v }, -1))
	if !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("err = %v, want ErrEngineClosed", err)
	}
}

func TestDistributedMapUnordered(t *testing.T) {
	d := New[int, int](WithUnordered(), WithBatch(2))
	out := d.Bind(pullstream.Count(25))
	for i := 0; i < 2; i++ {
		if err := d.Attach("p", processorDuplex(func(v int) int { return v }, -1)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 25 {
		t.Fatalf("got %d distinct results", len(seen))
	}
}

func TestDistributedMapStats(t *testing.T) {
	d := New[int, int]()
	_ = d.Bind(pullstream.Count(5))
	if err := d.Attach("p", processorDuplex(func(v int) int { return v }, -1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		_, _, subs, _ := d.Stats()
		if subs == 1 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("sub-stream never registered in stats")
		case <-time.After(time.Millisecond):
		}
	}
}
